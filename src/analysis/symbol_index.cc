#include "analysis/symbol_index.hh"

#include <algorithm>
#include <cstddef>
#include <deque>
#include <regex>
#include <set>

namespace critmem::analysis
{

namespace
{

/** C++ keywords (and cast/builtin names) that can never be callees
 *  or declaration names the indexer should record. */
const std::set<std::string> &
keywordSet()
{
    static const std::set<std::string> kKeywords{
        "alignas",     "alignof",   "assert",     "auto",
        "bool",        "break",     "case",       "catch",
        "char",        "class",     "co_await",   "co_return",
        "co_yield",    "const",     "const_cast", "constexpr",
        "continue",    "decltype",  "default",    "defined",
        "delete",      "do",        "double",     "dynamic_cast",
        "else",        "enum",      "explicit",   "extern",
        "false",       "float",     "for",        "friend",
        "goto",        "if",        "inline",     "int",
        "long",        "mutable",   "namespace",  "new",
        "noexcept",    "nullptr",   "operator",   "private",
        "protected",   "public",    "register",   "reinterpret_cast",
        "requires",    "return",    "short",      "signed",
        "sizeof",      "static",    "static_assert",
        "static_cast", "struct",    "switch",     "template",
        "this",        "throw",     "true",       "try",
        "typedef",     "typename",  "union",      "unsigned",
        "using",       "virtual",   "void",       "volatile",
        "while"};
    return kKeywords;
}

/**
 * Method names so common on std:: types that the unique-definer
 * fallback would fabricate edges (e.g. `str.clear()` resolving to
 * the one indexed class that happens to define clear()). Calls to
 * these through an untyped receiver are never resolved.
 */
const std::set<std::string> &
commonMethodNames()
{
    static const std::set<std::string> kCommon{
        "append", "at",      "back",    "begin",   "c_str",
        "clear",  "close",   "count",   "data",    "emplace",
        "emplace_back",      "empty",   "end",     "eof",
        "erase",  "fail",    "find",    "first",   "flush",
        "front",  "get",     "good",    "insert",  "length",
        "load",   "lock",    "open",    "pop",     "pop_back",
        "pop_front",         "push",    "push_back",
        "push_front",        "read",    "rbegin",  "release",
        "rend",   "reserve", "reset",   "resize",  "second",
        "seekg",  "size",    "state",   "store",   "str",
        "substr", "swap",    "tellg",   "top",     "unlock",
        "value",  "what",    "write"};
    return kCommon;
}

bool
isIdentStart(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        c == '_';
}

bool
isIdentChar(char c)
{
    return isIdentStart(c) || (c >= '0' && c <= '9');
}

/** ALL_CAPS identifiers are treated as macros, never calls/defs. */
bool
macroLike(const std::string &name)
{
    if (name.size() < 2)
        return false;
    bool letter = false;
    for (const char c : name) {
        if (c >= 'a' && c <= 'z')
            return false;
        if (c >= 'A' && c <= 'Z')
            letter = true;
        else if (c != '_' && !(c >= '0' && c <= '9'))
            return false;
    }
    return letter;
}

std::string
trim(const std::string &text)
{
    const std::size_t b = text.find_first_not_of(" \t\n");
    if (b == std::string::npos)
        return "";
    const std::size_t e = text.find_last_not_of(" \t\n");
    return text.substr(b, e - b + 1);
}

/** Offset of the '}' matching the '{' at @p open; npos if none. */
std::size_t
matchBrace(const std::string &text, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < text.size(); ++i) {
        if (text[i] == '{')
            ++depth;
        else if (text[i] == '}' && --depth == 0)
            return i;
    }
    return std::string::npos;
}

/** Offset of the ')' matching the '(' at @p open; npos if none. */
std::size_t
matchParen(const std::string &text, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < text.size(); ++i) {
        if (text[i] == '(')
            ++depth;
        else if (text[i] == ')' && --depth == 0)
            return i;
    }
    return std::string::npos;
}

/**
 * Offset of the '>' matching the '<' at @p open, looking at most
 * @p window chars ahead (a lone less-than never closes; the bound
 * keeps fuzzed inputs from going quadratic). npos if none.
 */
std::size_t
matchAngle(const std::string &text, std::size_t open,
           std::size_t window = 400)
{
    int depth = 0;
    const std::size_t end = std::min(text.size(), open + window);
    for (std::size_t i = open; i < end; ++i) {
        if (text[i] == '<')
            ++depth;
        else if (text[i] == '>' && --depth == 0)
            return i;
        else if (text[i] == ';' || text[i] == '{')
            return std::string::npos; // statements never span these
    }
    return std::string::npos;
}

/**
 * The file's code view with preprocessor directives blanked (their
 * text would otherwise corrupt brace matching), joined with '\n'.
 * Offsets are 1:1 with SourceFile::joinedCode().
 */
std::string
scanText(const SourceFile &file)
{
    std::string scan;
    bool continuation = false;
    for (const std::string &line : file.code) {
        const std::size_t first = line.find_first_not_of(" \t");
        const bool directive =
            continuation ||
            (first != std::string::npos && line[first] == '#');
        const bool endsBackslash =
            !line.empty() && line.back() == '\\';
        continuation = directive && endsBackslash;
        if (directive)
            scan.append(line.size(), ' ');
        else
            scan += line;
        scan += '\n';
    }
    return scan;
}

/**
 * Blank (offset-preserving) the pieces of a head that confuse
 * classification: access specifiers and template<...> preludes.
 */
std::string
preprocessHead(std::string head)
{
    static const std::regex kAccess(
        "\\b(public|protected|private)\\s*:(?!:)");
    std::smatch match;
    std::string rest = head;
    // Blank access specifiers.
    while (std::regex_search(rest, match, kAccess)) {
        const std::size_t pos =
            head.size() - rest.size() +
            static_cast<std::size_t>(match.position());
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(match.length()); ++i)
            head[pos + i] = ' ';
        rest = head.substr(pos + match.length());
    }
    // Blank template<...> preludes (so `template <class T>` cannot
    // be misread as a class definition of T).
    static const std::regex kTemplate("\\btemplate\\b");
    std::size_t from = 0;
    while (true) {
        const std::size_t pos = head.find("template", from);
        if (pos == std::string::npos)
            break;
        if ((pos > 0 && isIdentChar(head[pos - 1])) ||
            (pos + 8 < head.size() && isIdentChar(head[pos + 8]))) {
            from = pos + 8;
            continue;
        }
        std::size_t lt = head.find_first_not_of(" \t\n", pos + 8);
        if (lt == std::string::npos || head[lt] != '<') {
            from = pos + 8;
            continue;
        }
        const std::size_t close = matchAngle(head, lt, head.size());
        const std::size_t blankEnd =
            close == std::string::npos ? head.size() : close + 1;
        for (std::size_t i = pos; i < blankEnd; ++i)
            head[i] = ' ';
        from = blankEnd;
    }
    return head;
}

/** Offset of the first top-level single ':' at/after @p from. */
std::size_t
topLevelColon(const std::string &text, std::size_t from)
{
    int paren = 0;
    for (std::size_t i = from; i < text.size(); ++i) {
        const char c = text[i];
        if (c == '(' || c == '[')
            ++paren;
        else if (c == ')' || c == ']')
            --paren;
        else if (c == ':' && paren == 0) {
            const bool prevColon = i > 0 && text[i - 1] == ':';
            const bool nextColon =
                i + 1 < text.size() && text[i + 1] == ':';
            if (!prevColon && !nextColon)
                return i;
            if (nextColon)
                ++i;
        }
    }
    return std::string::npos;
}

/**
 * True when the '{' this head runs up to belongs to a member
 * initializer (`Foo::Foo(x) : member_` + '{'), not a function body.
 */
bool
isInitListBrace(const std::string &head)
{
    const std::string t = trim(head);
    if (t.empty() || !isIdentChar(t.back()))
        return false;
    const std::size_t lastParen = t.rfind(')');
    if (lastParen == std::string::npos)
        return false;
    return topLevelColon(t, lastParen) != std::string::npos;
}

/** Split @p text on top-level commas (ignoring (), [], <> groups). */
std::vector<std::string>
splitTopLevel(const std::string &text)
{
    std::vector<std::string> parts;
    int paren = 0, angle = 0;
    std::string current;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (c == '(' || c == '[')
            ++paren;
        else if (c == ')' || c == ']')
            --paren;
        else if (c == '<')
            ++angle;
        else if (c == '>' && angle > 0)
            --angle;
        if (c == ',' && paren == 0 && angle == 0) {
            parts.push_back(trim(current));
            current.clear();
        } else {
            current += c;
        }
    }
    const std::string last = trim(current);
    if (!last.empty() || !parts.empty())
        parts.push_back(last);
    return parts;
}

/** Last identifier in @p text that is not a C++ keyword. */
std::string
lastTypeIdentifier(const std::string &text)
{
    std::string best;
    std::size_t i = 0;
    while (i < text.size()) {
        if (isIdentStart(text[i]) &&
            (i == 0 || !isIdentChar(text[i - 1]))) {
            std::size_t j = i;
            while (j < text.size() && isIdentChar(text[j]))
                ++j;
            const std::string ident = text.substr(i, j - i);
            if (!keywordSet().count(ident))
                best = ident;
            i = j;
        } else {
            ++i;
        }
    }
    return best;
}

/** Qualified-name tail match: qname == suffix or ends ::suffix. */
bool
qnameEndsWith(const std::string &qname, const std::string &suffix)
{
    if (qname == suffix)
        return true;
    if (qname.size() <= suffix.size() + 2)
        return false;
    return qname.compare(qname.size() - suffix.size() - 2, 2, "::") ==
               0 &&
        qname.compare(qname.size() - suffix.size(), suffix.size(),
                      suffix) == 0;
}

/** Remove every space from @p text (qualifier normalization). */
std::string
stripSpaces(std::string text)
{
    text.erase(std::remove_if(text.begin(), text.end(),
                              [](char c) {
                                  return c == ' ' || c == '\t' ||
                                      c == '\n';
                              }),
               text.end());
    return text;
}

/** A classified scope-opening head. */
struct Head
{
    enum class Kind { None, Namespace, Class, Function };
    Kind kind = Kind::None;
    /** Namespace components ("" for anonymous). */
    std::vector<std::string> namespaces;
    /** Class short name / function name. */
    std::string name;
    /** Function: `A::B` qualifier before the name ("" if none). */
    std::string qualifier;
    /** Class: base-class short names. */
    std::vector<std::string> bases;
    /** Function: parameter-list text (inside the parens). */
    std::string params;
    /** Offset of the name inside the (preprocessed) head. */
    std::size_t nameOffset = 0;
};

/** Can @p suffix legally follow a function's parameter list? */
bool
suffixIsQualifiers(const std::string &suffix)
{
    std::size_t i = 0;
    while (i < suffix.size()) {
        while (i < suffix.size() &&
               (suffix[i] == ' ' || suffix[i] == '\t' ||
                suffix[i] == '\n'))
            ++i;
        if (i >= suffix.size())
            return true;
        if (suffix[i] == ':' &&
            (i + 1 >= suffix.size() || suffix[i + 1] != ':'))
            return true; // constructor initializer list
        if (suffix.compare(i, 2, "->") == 0)
            return true; // trailing return type
        if (suffix[i] == '&') {
            ++i;
            if (i < suffix.size() && suffix[i] == '&')
                ++i;
            continue;
        }
        if (isIdentStart(suffix[i])) {
            std::size_t j = i;
            while (j < suffix.size() && isIdentChar(suffix[j]))
                ++j;
            const std::string word = suffix.substr(i, j - i);
            if (word == "const" || word == "override" ||
                word == "final" || word == "mutable" ||
                word == "try") {
                i = j;
                continue;
            }
            if (word == "noexcept") {
                i = j;
                while (i < suffix.size() &&
                       (suffix[i] == ' ' || suffix[i] == '\t' ||
                        suffix[i] == '\n'))
                    ++i;
                if (i < suffix.size() && suffix[i] == '(') {
                    const std::size_t close =
                        matchParen(suffix, i);
                    if (close == std::string::npos)
                        return false;
                    i = close + 1;
                }
                continue;
            }
            return false;
        }
        return false;
    }
    return true;
}

/** Parse the `A::B::name` tail ending at offset @p end of @p head. */
bool
matchFunctionName(const std::string &prefix, std::string &qualifier,
                  std::string &name, std::size_t &nameOffset)
{
    static const std::regex kName(
        "(?:([A-Za-z_]\\w*(?:\\s*::\\s*[A-Za-z_]\\w*)*)\\s*::\\s*)?"
        "(~?[A-Za-z_]\\w*|operator\\s*(?:\\(\\s*\\)|\\[\\s*\\]|"
        "[^\\s(A-Za-z0-9_]{1,3}))\\s*$");
    std::smatch match;
    if (!std::regex_search(prefix, match, kName))
        return false;
    qualifier = stripSpaces(match[1].str());
    name = stripSpaces(match[2].str());
    nameOffset = static_cast<std::size_t>(match.position(2));
    if (name.empty())
        return false;
    const std::string bare =
        name[0] == '~' ? name.substr(1) : name;
    if (name.rfind("operator", 0) != 0 &&
        (keywordSet().count(bare) || macroLike(bare)))
        return false;
    return true;
}

/** Classify one (preprocessed) scope-opening head. */
Head
classifyHead(const std::string &head)
{
    Head out;
    const std::string t = trim(head);
    if (t.empty())
        return out;

    // namespace [name[::name...]]
    static const std::regex kNamespace(
        "^(?:inline\\s+)?namespace\\b([\\s\\w:]*)$");
    std::smatch ns;
    if (std::regex_match(t, ns, kNamespace)) {
        out.kind = Head::Kind::Namespace;
        const std::string names = stripSpaces(ns[1].str());
        if (names.empty()) {
            out.namespaces.push_back("");
        } else {
            std::size_t pos = 0;
            while (pos <= names.size()) {
                const std::size_t sep = names.find("::", pos);
                if (sep == std::string::npos) {
                    out.namespaces.push_back(names.substr(pos));
                    break;
                }
                out.namespaces.push_back(
                    names.substr(pos, sep - pos));
                pos = sep + 2;
            }
        }
        return out;
    }

    // class/struct Name [final] [: bases]
    static const std::regex kClass(
        "(^|[^\\w])(class|struct)\\s+([A-Za-z_]\\w*)");
    std::smatch cls;
    if (std::regex_search(head, cls, kClass)) {
        const std::size_t pos =
            static_cast<std::size_t>(cls.position(2));
        const std::size_t paren = head.find('(');
        const std::size_t enumPos = head.find("enum");
        const bool enumBefore =
            enumPos != std::string::npos && enumPos < pos;
        if ((paren == std::string::npos || paren > pos) &&
            !enumBefore) {
            out.kind = Head::Kind::Class;
            out.name = cls[3];
            out.nameOffset =
                static_cast<std::size_t>(cls.position(3));
            const std::size_t colon = topLevelColon(
                head, out.nameOffset + out.name.size());
            if (colon != std::string::npos) {
                for (const std::string &base :
                     splitTopLevel(head.substr(colon + 1))) {
                    std::string b = base;
                    static const std::regex kBaseAccess(
                        "\\b(virtual|public|protected|private)\\b");
                    b = std::regex_replace(b, kBaseAccess, " ");
                    const std::size_t lt = b.find('<');
                    if (lt != std::string::npos)
                        b = b.substr(0, lt);
                    const std::string name = lastTypeIdentifier(b);
                    if (!name.empty())
                        out.bases.push_back(name);
                }
            }
            return out;
        }
    }

    // function: the leftmost top-level paren group whose prefix ends
    // in a plausible name and whose suffix is only qualifiers.
    int depth = 0;
    for (std::size_t i = 0; i < head.size(); ++i) {
        const char c = head[i];
        if (c == ')') {
            --depth;
            continue;
        }
        if (c != '(')
            continue;
        if (depth++ != 0)
            continue;
        const std::size_t close = matchParen(head, i);
        if (close == std::string::npos)
            return out;
        std::string qualifier, name;
        std::size_t nameOffset = 0;
        const std::string prefix = head.substr(0, i);
        if (matchFunctionName(prefix, qualifier, name, nameOffset) &&
            suffixIsQualifiers(head.substr(close + 1))) {
            out.kind = Head::Kind::Function;
            out.qualifier = qualifier;
            out.name = name;
            out.nameOffset = nameOffset;
            out.params = head.substr(i + 1, close - i - 1);
            return out;
        }
        // Skip past this group so `operator()`'s name parens (or a
        // parenthesized return type) don't shadow the real one.
        i = close;
        --depth;
    }
    return out;
}

/** Read the identifier ending at @p end (exclusive) backwards. */
std::string
identEndingAt(const std::string &text, std::size_t end)
{
    std::size_t b = end;
    while (b > 0 && isIdentChar(text[b - 1]))
        --b;
    if (b == end || !isIdentStart(text[b]))
        return "";
    return text.substr(b, end - b);
}

std::size_t
skipWsBack(const std::string &text, std::size_t pos)
{
    while (pos > 0 &&
           (text[pos - 1] == ' ' || text[pos - 1] == '\t' ||
            text[pos - 1] == '\n'))
        --pos;
    return pos;
}

/**
 * Whether the ')' at @p closeParen (1-based end, i.e. text[closeParen
 * - 1] == ')') closes a control-statement header — `for (...)`,
 * `if (...)`, `while (...)`, `switch (...)`, `catch (...)`. A
 * receiver right after such a ')' starts a fresh statement and is NOT
 * part of a chained expression. The backward scan is bounded; an
 * unmatched or too-distant '(' reads as "not a control header".
 */
bool
closesControlHeader(const std::string &text, std::size_t closeParen)
{
    if (closeParen == 0 || text[closeParen - 1] != ')')
        return false;
    static const std::set<std::string> kControl{
        "for", "if", "while", "switch", "catch"};
    int depth = 0;
    const std::size_t floor =
        closeParen > 2000 ? closeParen - 2000 : 0;
    for (std::size_t p = closeParen; p > floor; --p) {
        const char c = text[p - 1];
        if (c == ')') {
            ++depth;
        } else if (c == '(') {
            if (--depth == 0) {
                const std::size_t w = skipWsBack(text, p - 1);
                return kControl.count(identEndingAt(text, w)) > 0;
            }
        }
    }
    return false;
}

} // namespace

int
SymbolIndex::classByShortName(const std::string &shortName) const
{
    const auto it = classesByShort_.find(shortName);
    if (it == classesByShort_.end() || it->second.size() != 1)
        return -1;
    return it->second.front();
}

int
SymbolIndex::classOfType(const std::string &type) const
{
    // Collect identifiers left to right, then try the rightmost
    // first: `std::vector<std::unique_ptr<Core>>` names Core.
    std::vector<std::string> idents;
    std::size_t i = 0;
    while (i < type.size()) {
        if (isIdentStart(type[i]) &&
            (i == 0 || !isIdentChar(type[i - 1]))) {
            std::size_t j = i;
            while (j < type.size() && isIdentChar(type[j]))
                ++j;
            const std::string ident = type.substr(i, j - i);
            if (!keywordSet().count(ident))
                idents.push_back(ident);
            i = j;
        } else {
            ++i;
        }
    }
    for (auto it = idents.rbegin(); it != idents.rend(); ++it) {
        const int cls = classByShortName(*it);
        if (cls >= 0)
            return cls;
    }
    return -1;
}

std::vector<int>
SymbolIndex::family(const std::string &rootShortName) const
{
    std::set<std::string> names{rootShortName};
    std::set<int> ids;
    const int root = classByShortName(rootShortName);
    if (root >= 0)
        ids.insert(root);
    bool grew = true;
    while (grew) {
        grew = false;
        for (std::size_t c = 0; c < classes_.size(); ++c) {
            if (ids.count(static_cast<int>(c)))
                continue;
            for (const std::string &base : classes_[c].bases) {
                if (!names.count(base))
                    continue;
                ids.insert(static_cast<int>(c));
                names.insert(classes_[c].shortName);
                grew = true;
                break;
            }
        }
    }
    return {ids.begin(), ids.end()};
}

int
SymbolIndex::methodNoWalk(int classId, const std::string &name) const
{
    if (classId < 0 ||
        static_cast<std::size_t>(classId) >= classes_.size())
        return -1;
    const auto it = nodeByQname_.find(
        classes_[static_cast<std::size_t>(classId)].qname +
        "::" + name);
    return it == nodeByQname_.end() ? -1 : it->second;
}

int
SymbolIndex::method(int classId, const std::string &name) const
{
    std::set<int> visited;
    std::deque<int> queue{classId};
    while (!queue.empty()) {
        const int c = queue.front();
        queue.pop_front();
        if (c < 0 || !visited.insert(c).second)
            continue;
        const int m = methodNoWalk(c, name);
        if (m >= 0)
            return m;
        for (const std::string &base :
             classes_[static_cast<std::size_t>(c)].bases)
            queue.push_back(classByShortName(base));
    }
    return -1;
}

std::vector<int>
SymbolIndex::methods(int classId) const
{
    std::vector<int> out;
    for (std::size_t n = 0; n < functions_.size(); ++n) {
        if (functions_[n].classId == classId)
            out.push_back(static_cast<int>(n));
    }
    return out;
}

int
SymbolIndex::byQnameSuffix(const std::string &suffix) const
{
    int found = -1;
    for (std::size_t n = 0; n < functions_.size(); ++n) {
        if (!qnameEndsWith(functions_[n].qname, suffix))
            continue;
        if (found >= 0)
            return -1; // ambiguous
        found = static_cast<int>(n);
    }
    return found;
}

std::vector<int>
SymbolIndex::byShortName(const std::string &shortName) const
{
    const auto it = nodesByShort_.find(shortName);
    return it == nodesByShort_.end() ? std::vector<int>{}
                                     : it->second;
}

int
SymbolIndex::enclosingFunction(int fileIndex, int line) const
{
    int best = -1;
    int bestSpan = 0;
    for (std::size_t n = 0; n < functions_.size(); ++n) {
        for (const FunctionDef &def : functions_[n].defs) {
            if (def.fileIndex != fileIndex || line < def.headLine ||
                line > def.bodyEndLine)
                continue;
            const int span = def.bodyEndLine - def.headLine;
            if (best < 0 || span < bestSpan) {
                best = static_cast<int>(n);
                bestSpan = span;
            }
        }
    }
    return best;
}

std::vector<int>
SymbolIndex::reachable(const std::vector<int> &entries) const
{
    std::set<int> seen;
    std::deque<int> queue;
    for (const int id : entries) {
        if (id >= 0 && seen.insert(id).second)
            queue.push_back(id);
    }
    while (!queue.empty()) {
        const int id = queue.front();
        queue.pop_front();
        for (const Edge &edge :
             functions_[static_cast<std::size_t>(id)].edges) {
            if (seen.insert(edge.callee).second)
                queue.push_back(edge.callee);
        }
    }
    return {seen.begin(), seen.end()};
}

std::vector<ChainStep>
SymbolIndex::chain(const std::vector<int> &entries, int target,
                   const std::vector<SourceFile> &files) const
{
    std::set<int> starts(entries.begin(), entries.end());
    starts.erase(-1);
    std::map<int, std::pair<int, const Edge *>> parent;
    std::deque<int> queue;
    for (const int id : starts) {
        parent.emplace(id, std::make_pair(-1, nullptr));
        queue.push_back(id);
    }
    bool found = starts.count(target) > 0;
    while (!queue.empty() && !found) {
        const int id = queue.front();
        queue.pop_front();
        for (const Edge &edge :
             functions_[static_cast<std::size_t>(id)].edges) {
            if (parent.count(edge.callee))
                continue;
            parent.emplace(edge.callee,
                           std::make_pair(id, &edge));
            if (edge.callee == target) {
                found = true;
                break;
            }
            queue.push_back(edge.callee);
        }
    }
    if (!found)
        return {};

    std::vector<int> path;
    std::vector<const Edge *> via;
    for (int id = target; id >= 0;) {
        const auto &p = parent.at(id);
        path.push_back(id);
        via.push_back(p.second);
        id = p.first;
    }
    std::reverse(path.begin(), path.end());
    std::reverse(via.begin(), via.end());

    std::vector<ChainStep> steps;
    for (std::size_t i = 0; i < path.size(); ++i) {
        const FunctionNode &node =
            functions_[static_cast<std::size_t>(path[i])];
        ChainStep step;
        step.qname = node.qname;
        if (via[i] != nullptr) {
            step.path =
                files[static_cast<std::size_t>(via[i]->fileIndex)]
                    .path;
            step.line = via[i]->line;
        } else if (!node.defs.empty()) {
            step.path =
                files[static_cast<std::size_t>(
                          node.defs.front().fileIndex)]
                    .path;
            step.line = node.defs.front().line;
        }
        steps.push_back(std::move(step));
    }
    return steps;
}

namespace
{

/** Strip a `= default-value` tail (top level) from a declarator. */
std::string
stripDefault(const std::string &text)
{
    int paren = 0, angle = 0;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (c == '(' || c == '[')
            ++paren;
        else if (c == ')' || c == ']')
            --paren;
        else if (c == '<')
            ++angle;
        else if (c == '>' && angle > 0)
            --angle;
        else if (c == '=' && paren == 0 && angle == 0 &&
                 (i == 0 || (text[i - 1] != '=' &&
                             text[i - 1] != '!' &&
                             text[i - 1] != '<' &&
                             text[i - 1] != '>')) &&
                 (i + 1 >= text.size() || text[i + 1] != '='))
            return trim(text.substr(0, i));
    }
    return trim(text);
}

/** Parse `Type name` out of one declarator; "" name when unnamed. */
bool
splitTypeName(const std::string &declarator, std::string &type,
              std::string &name)
{
    const std::string d = stripDefault(declarator);
    if (d.empty() || d == "void")
        return false;
    static const std::regex kTail("([A-Za-z_]\\w*)\\s*$");
    std::smatch tail;
    if (!std::regex_search(d, tail, kTail)) {
        type = d;
        name = "";
        return true;
    }
    std::string prefix =
        trim(d.substr(0, static_cast<std::size_t>(tail.position())));
    // Unnamed declarators: `std::uint64_t` (tail belongs to the
    // type) and `const Foo` (cv-qualifier cannot end a type-name
    // sequence, so the tail IS the type).
    bool unnamed = prefix.empty();
    if (!unnamed && prefix.size() >= 2 &&
        prefix.compare(prefix.size() - 2, 2, "::") == 0)
        unnamed = true;
    if (!unnamed) {
        const std::string lastWord = identEndingAt(
            prefix, prefix.find_last_not_of(" \t\n") + 1);
        if (lastWord == "const" || lastWord == "volatile")
            unnamed = true;
    }
    if (unnamed) {
        type = d;
        name = "";
        return true;
    }
    while (!prefix.empty() &&
           (prefix.back() == '&' || prefix.back() == '*'))
        prefix = trim(prefix.substr(0, prefix.size() - 1));
    type = prefix;
    name = tail[1];
    return true;
}

void
parseParams(const std::string &text, FunctionDef &def)
{
    for (const std::string &part : splitTopLevel(text)) {
        if (part.empty())
            continue;
        std::string type, name;
        if (!splitTypeName(part, type, name))
            continue;
        def.params.push_back({type, name});
        if (!name.empty())
            def.locals.emplace(name, type);
    }
}

/** Member-statement keywords that disqualify a member-var parse. */
bool
memberDisqualified(const std::string &stmt)
{
    static const std::regex kBad(
        "\\b(using|typedef|friend|static_assert|enum|operator|"
        "return|throw|template|goto|case)\\b|\\(");
    return std::regex_search(stmt, kBad);
}

} // namespace

/** Build-time implementation helpers with access to the index. */
struct IndexBuilder
{
    SymbolIndex &index;
    const std::vector<SourceFile> &files;

    void
    registerClassShort(int id)
    {
        index.classesByShort_[index.classes_[
            static_cast<std::size_t>(id)].shortName]
            .push_back(id);
    }

    int
    ensureNode(const std::string &qname,
               const std::string &shortName, int classId)
    {
        const auto it = index.nodeByQname_.find(qname);
        if (it != index.nodeByQname_.end())
            return it->second;
        const int id = static_cast<int>(index.functions_.size());
        FunctionNode node;
        node.qname = qname;
        node.shortName = shortName;
        node.classId = classId;
        index.functions_.push_back(std::move(node));
        index.nodeByQname_.emplace(qname, id);
        index.nodesByShort_[shortName].push_back(id);
        return id;
    }

    /** Parse one class-scope statement as a member variable. */
    void
    parseMember(const std::string &stmt, int classId, int line)
    {
        std::string cleaned = trim(stmt);
        static const std::regex kStorage(
            "^(?:(?:static|mutable|constexpr|inline)\\s+)+");
        cleaned = std::regex_replace(cleaned, kStorage, "");
        if (cleaned.empty() || memberDisqualified(cleaned))
            return;
        std::string type, name;
        if (!splitTypeName(cleaned, type, name) || name.empty())
            return;
        if (keywordSet().count(name) || macroLike(name))
            return;
        ClassInfo &cls =
            index.classes_[static_cast<std::size_t>(classId)];
        cls.members.emplace(name, MemberVar{type, line});
    }

    /** Locals: `Type name` declarations at statement starts. */
    void
    extractLocals(const std::string &body, std::size_t base,
                  const SourceFile &file, int classId,
                  FunctionDef &def)
    {
        // The separator between type and name must be real
        // (whitespace or ref/pointer tokens): without it, `now_ =
        // to` would parse as type `now` + name `_`, and `for`/`if`
        // would split into fake one-letter locals.
        static const std::regex kDecl(
            "^\\s*(?:(?:const|constexpr|static|auto&?)\\s+)*"
            "((?:[A-Za-z_]\\w*\\s*::\\s*)*[A-Za-z_]\\w*"
            "(?:\\s*<[^;{}]*>)?)((?:\\s*[&*])+\\s*|\\s+)"
            "([A-Za-z_]\\w*)\\s*(?:[;=({\\[]|$)");
        std::size_t start = 0;
        for (std::size_t i = 0; i <= body.size(); ++i) {
            const char c = i < body.size() ? body[i] : ';';
            if (c != ';' && c != '{' && c != '}')
                continue;
            const std::string stmt =
                body.substr(start, i - start);
            start = i + 1;
            std::smatch m;
            if (!std::regex_search(stmt, m, kDecl))
                continue;
            const std::string type = trim(m[1].str());
            const std::string name = m[3];
            if (keywordSet().count(type) ||
                keywordSet().count(name) || macroLike(name) ||
                type == "auto")
                continue;
            def.locals.emplace(name, type);
        }

        // Range-for element declarations, with container-element
        // inference for `auto` from member/local container types.
        static const std::regex kRangeFor(
            "\\bfor\\s*\\(\\s*(?:const\\s+)?"
            "(auto|(?:[A-Za-z_]\\w*\\s*::\\s*)*[A-Za-z_]\\w*"
            "(?:\\s*<[^;()]*>)?)((?:\\s*[&*])+\\s*|\\s+)"
            "([A-Za-z_]\\w*)\\s*:\\s*([^();]+)\\)");
        for (auto it = std::sregex_iterator(body.begin(), body.end(),
                                            kRangeFor);
             it != std::sregex_iterator(); ++it) {
            const std::string type = trim((*it)[1].str());
            const std::string name = (*it)[3];
            const std::string cont = trim((*it)[4].str());
            if (type != "auto") {
                def.locals.emplace(name, type);
                continue;
            }
            std::string contType;
            const auto local = def.locals.find(cont);
            if (local != def.locals.end()) {
                contType = local->second;
            } else if (classId >= 0) {
                const auto &members =
                    index.classes_[static_cast<std::size_t>(
                                       classId)]
                        .members;
                const auto member = members.find(cont);
                if (member != members.end())
                    contType = member->second.type;
            }
            if (contType.empty())
                continue;
            const std::size_t lt = contType.find('<');
            if (lt == std::string::npos)
                continue;
            const std::size_t gt =
                matchAngle(contType, lt, contType.size());
            if (gt == std::string::npos)
                continue;
            const std::vector<std::string> args = splitTopLevel(
                contType.substr(lt + 1, gt - lt - 1));
            if (!args.empty() && !args.front().empty())
                def.locals.emplace(name, args.front());
        }
        (void)base;
        (void)file;
    }

    /** Call sites: identifier(...) occurrences, classified. */
    void
    extractCalls(const std::string &body, std::size_t base,
                 const SourceFile &file, FunctionDef &def)
    {
        for (std::size_t i = 0; i < body.size();) {
            if (!isIdentStart(body[i]) ||
                (i > 0 && isIdentChar(body[i - 1]))) {
                ++i;
                continue;
            }
            std::size_t j = i;
            while (j < body.size() && isIdentChar(body[j]))
                ++j;
            const std::string ident = body.substr(i, j - i);
            std::size_t k = j;
            while (k < body.size() &&
                   (body[k] == ' ' || body[k] == '\t' ||
                    body[k] == '\n'))
                ++k;
            std::string templateArgs;
            if (k < body.size() && body[k] == '<') {
                const std::size_t close = matchAngle(body, k);
                if (close == std::string::npos) {
                    i = j;
                    continue;
                }
                std::size_t after = close + 1;
                while (after < body.size() &&
                       (body[after] == ' ' || body[after] == '\t' ||
                        body[after] == '\n'))
                    ++after;
                if (after >= body.size() || body[after] != '(') {
                    i = j;
                    continue;
                }
                templateArgs =
                    body.substr(k + 1, close - k - 1);
                k = after;
            }
            if (k >= body.size() || body[k] != '(') {
                i = j;
                continue;
            }
            if (keywordSet().count(ident) || macroLike(ident)) {
                i = j;
                continue;
            }

            CallSite call;
            call.line = file.lineOfOffset(base + i);
            const std::size_t close = matchParen(body, k);
            if (close != std::string::npos) {
                for (const std::string &arg : splitTopLevel(
                         body.substr(k + 1, close - k - 1))) {
                    if (!arg.empty())
                        call.args.push_back(arg);
                }
            }

            // Walk back: qualifier chain, then receiver/context.
            std::size_t p = skipWsBack(body, i);
            std::vector<std::string> chain;
            while (p >= 2 && body[p - 1] == ':' &&
                   body[p - 2] == ':') {
                p = skipWsBack(body, p - 2);
                const std::string tok = identEndingAt(body, p);
                if (tok.empty())
                    break; // leading `::` (global qualifier)
                chain.insert(chain.begin(), tok);
                p = skipWsBack(body, p - tok.size());
            }
            for (std::size_t ci = 0; ci < chain.size(); ++ci) {
                if (ci)
                    call.qualifier += "::";
                call.qualifier += chain[ci];
            }

            bool declMatched = false;
            if (call.qualifier.empty() && p > 0) {
                const char prev = body[p - 1];
                auto receiverAt = [&](std::size_t end) {
                    const std::size_t r = skipWsBack(body, end);
                    const std::string recv =
                        identEndingAt(body, r);
                    const std::size_t before =
                        skipWsBack(body, r - recv.size());
                    // `foo(x).bar()` / `arr[i].bar()` /
                    // `p->q->bar()` receivers are complex
                    // expressions — except a ')' that merely closes
                    // a `for (...)` / `if (...)` header, which
                    // starts a fresh statement.
                    const bool chained = recv.empty() ||
                        (before > 0 &&
                         (body[before - 1] == '.' ||
                          body[before - 1] == ']' ||
                          (body[before - 1] == ')' &&
                           !closesControlHeader(body, before)) ||
                          (before > 1 && body[before - 1] == '>' &&
                           body[before - 2] == '-')));
                    call.receiver = chained ? "?" : recv;
                };
                if (prev == '.') {
                    receiverAt(p - 1);
                } else if (prev == '>' && p > 1 &&
                           body[p - 2] == '-') {
                    receiverAt(p - 2);
                } else if (isIdentChar(prev)) {
                    // `Type name(args)`: a declaration, not a call
                    // of `name` — record a constructor invocation
                    // of Type (plus the local) instead.
                    const std::string prevTok =
                        identEndingAt(body, p);
                    if (prevTok == "new") {
                        call.ctor = true;
                        call.name = ident;
                        declMatched = true;
                    } else if (!prevTok.empty() &&
                               !keywordSet().count(prevTok) &&
                               !macroLike(prevTok)) {
                        call.ctor = true;
                        call.name = prevTok;
                        def.locals.emplace(ident, prevTok);
                        declMatched = true;
                    }
                } else if (prev == '>') {
                    // `vector<T> name(...)`: declaration with a
                    // templated type; skip (no reliable callee).
                    i = j;
                    continue;
                }
            }

            if (!declMatched) {
                if ((ident == "make_unique" ||
                     ident == "make_shared") &&
                    !templateArgs.empty()) {
                    const std::vector<std::string> targs =
                        splitTopLevel(templateArgs);
                    const std::string cls = targs.empty()
                        ? std::string()
                        : lastTypeIdentifier(targs.front());
                    if (cls.empty()) {
                        i = j;
                        continue;
                    }
                    call.ctor = true;
                    call.qualifier.clear();
                    call.name = cls;
                } else {
                    call.name = ident;
                }
            }
            def.calls.push_back(std::move(call));
            i = j;
        }
    }

    void
    indexFile(const SourceFile &file, int fileIndex)
    {
        const std::string scan = scanText(file);
        struct Scope
        {
            bool isClass;
            std::string name;
            int classId;
        };
        std::vector<Scope> stack;
        auto scopeQname = [&](const std::string &extra) {
            std::string qname;
            for (const Scope &scope : stack) {
                if (scope.name.empty())
                    continue;
                if (!qname.empty())
                    qname += "::";
                qname += scope.name;
            }
            if (!extra.empty()) {
                if (!qname.empty())
                    qname += "::";
                qname += extra;
            }
            return qname;
        };

        std::size_t headStart = 0;
        std::size_t i = 0;
        while (i < scan.size()) {
            const char c = scan[i];
            if (c == ';') {
                if (!stack.empty() && stack.back().isClass)
                    parseMember(
                        scan.substr(headStart, i - headStart),
                        stack.back().classId,
                        file.lineOfOffset(headStart));
                headStart = ++i;
                continue;
            }
            if (c == '}') {
                if (!stack.empty())
                    stack.pop_back();
                headStart = ++i;
                continue;
            }
            if (c != '{') {
                ++i;
                continue;
            }

            const std::string rawHead =
                scan.substr(headStart, i - headStart);
            if (isInitListBrace(rawHead)) {
                // Member-initializer brace: fold it into the head
                // and keep looking for the body brace.
                const std::size_t close = matchBrace(scan, i);
                if (close == std::string::npos)
                    break;
                i = close + 1;
                continue;
            }
            const std::string head = preprocessHead(rawHead);
            const Head parsed = classifyHead(head);
            const std::size_t close = matchBrace(scan, i);

            if (parsed.kind == Head::Kind::Namespace) {
                // One scope entry per brace, even for `namespace
                // A::B {` — a single '}' closes the whole chain.
                std::string joined;
                for (const std::string &name : parsed.namespaces) {
                    const std::string effective = name.empty()
                        ? "(anon@" + std::to_string(fileIndex) + ")"
                        : name;
                    if (!joined.empty())
                        joined += "::";
                    joined += effective;
                }
                stack.push_back({false, joined, -1});
                headStart = ++i;
                continue;
            }

            if (parsed.kind == Head::Kind::Class) {
                const std::string qname = scopeQname(parsed.name);
                int classId = -1;
                for (std::size_t ci = 0;
                     ci < index.classes_.size(); ++ci) {
                    if (index.classes_[ci].qname == qname) {
                        classId = static_cast<int>(ci);
                        break;
                    }
                }
                if (classId < 0) {
                    classId =
                        static_cast<int>(index.classes_.size());
                    ClassInfo cls;
                    cls.qname = qname;
                    cls.shortName = parsed.name;
                    cls.bases = parsed.bases;
                    cls.fileIndex = fileIndex;
                    cls.line = file.lineOfOffset(
                        headStart + parsed.nameOffset);
                    index.classes_.push_back(std::move(cls));
                    registerClassShort(classId);
                }
                stack.push_back({true, parsed.name, classId});
                headStart = ++i;
                continue;
            }

            if (parsed.kind == Head::Kind::Function &&
                close != std::string::npos) {
                int classId = -1;
                std::string qname;
                if (!parsed.qualifier.empty()) {
                    // Out-of-line member: bind the qualifier to the
                    // first known class whose qname ends in it
                    // (classes_ order is deterministic).
                    for (std::size_t ci = 0;
                         ci < index.classes_.size() && classId < 0;
                         ++ci) {
                        if (qnameEndsWith(index.classes_[ci].qname,
                                          parsed.qualifier))
                            classId = static_cast<int>(ci);
                    }
                    if (classId >= 0) {
                        qname = index.classes_
                                    [static_cast<std::size_t>(
                                         classId)]
                                        .qname +
                            "::" + parsed.name;
                    } else {
                        qname = scopeQname(parsed.qualifier +
                                           "::" + parsed.name);
                    }
                } else if (!stack.empty() &&
                           stack.back().isClass) {
                    classId = stack.back().classId;
                    qname = index.classes_
                                [static_cast<std::size_t>(classId)]
                                    .qname +
                        "::" + parsed.name;
                } else {
                    qname = scopeQname(parsed.name);
                }

                const int nodeId =
                    ensureNode(qname, parsed.name, classId);
                FunctionDef def;
                def.fileIndex = fileIndex;
                const std::size_t effStart =
                    headStart +
                    std::min(rawHead.find_first_not_of(" \t\n"),
                             rawHead.size());
                def.headLine = file.lineOfOffset(effStart);
                def.line = file.lineOfOffset(headStart +
                                             parsed.nameOffset);
                def.bodyBeginLine = file.lineOfOffset(i);
                def.bodyEndLine = file.lineOfOffset(close);
                parseParams(parsed.params, def);
                const std::string body =
                    scan.substr(i + 1, close - i - 1);
                extractLocals(body, i + 1, file, classId, def);
                extractCalls(body, i + 1, file, def);
                index.functions_[static_cast<std::size_t>(nodeId)]
                    .defs.push_back(std::move(def));
                i = close + 1;
                headStart = i;
                continue;
            }

            // Anything else that opens a brace (enum, initializer,
            // lambda at file scope, unparseable head): record a
            // possible member declaration, then skip the group.
            if (!stack.empty() && stack.back().isClass)
                parseMember(rawHead, stack.back().classId,
                            file.lineOfOffset(headStart));
            if (close == std::string::npos)
                break;
            i = close + 1;
            headStart = i;
        }
    }

    void
    link()
    {
        for (std::size_t n = 0; n < index.functions_.size(); ++n) {
            FunctionNode &node = index.functions_[n];
            std::map<int, Edge> edges;
            for (FunctionDef &def : node.defs) {
                for (CallSite &call : def.calls) {
                    call.callee =
                        index.resolveCall(node, def, call, files);
                    if (call.callee < 0)
                        continue;
                    edges.emplace(
                        call.callee,
                        Edge{call.callee, def.fileIndex,
                             call.line});
                }
            }
            node.edges.clear();
            node.edges.reserve(edges.size());
            for (const auto &entry : edges)
                node.edges.push_back(entry.second);
        }
    }
};

int
SymbolIndex::resolveCall(const FunctionNode &caller,
                         const FunctionDef &def,
                         const CallSite &call,
                         const std::vector<SourceFile> &files) const
{
    (void)files;
    if (call.ctor) {
        const int cls = classByShortName(call.name);
        if (cls < 0)
            return -1;
        return methodNoWalk(
            cls, classes_[static_cast<std::size_t>(cls)].shortName);
    }

    if (!call.qualifier.empty()) {
        // Class-qualified (base/static) call, then an exact
        // namespace-qualified function.
        int cls = -1;
        for (std::size_t ci = 0; ci < classes_.size(); ++ci) {
            if (qnameEndsWith(classes_[ci].qname, call.qualifier)) {
                if (cls >= 0) {
                    cls = -1;
                    break; // ambiguous
                }
                cls = static_cast<int>(ci);
            }
        }
        if (cls >= 0) {
            const int m = method(cls, call.name);
            if (m >= 0)
                return m;
        }
        return byQnameSuffix(call.qualifier + "::" + call.name);
    }

    if (call.receiver.empty() || call.receiver == "this") {
        if (caller.classId >= 0) {
            const int m = method(caller.classId, call.name);
            if (m >= 0)
                return m;
        }
        if (call.receiver == "this")
            return -1;
        // Enclosing namespaces, innermost first.
        std::string prefix = caller.qname;
        while (true) {
            const std::size_t sep = prefix.rfind("::");
            if (sep == std::string::npos)
                break;
            prefix = prefix.substr(0, sep);
            const auto it =
                nodeByQname_.find(prefix + "::" + call.name);
            if (it != nodeByQname_.end() &&
                functions_[static_cast<std::size_t>(it->second)]
                        .classId < 0)
                return it->second;
        }
        const auto global = nodeByQname_.find(call.name);
        if (global != nodeByQname_.end() &&
            functions_[static_cast<std::size_t>(global->second)]
                    .classId < 0)
            return global->second;
        // A unique free function anywhere.
        const auto it = nodesByShort_.find(call.name);
        if (it != nodesByShort_.end()) {
            int found = -1;
            for (const int id : it->second) {
                if (functions_[static_cast<std::size_t>(id)]
                        .classId >= 0)
                    continue;
                if (found >= 0)
                    return -1;
                found = id;
            }
            if (found >= 0)
                return found;
        }
        return -1;
    }

    // Receiver expression: type it if we can.
    std::string type;
    if (call.receiver != "?") {
        const auto local = def.locals.find(call.receiver);
        if (local != def.locals.end()) {
            type = local->second;
        } else if (caller.classId >= 0) {
            // Member variable, walking base classes.
            std::set<int> visited;
            std::deque<int> queue{caller.classId};
            while (!queue.empty() && type.empty()) {
                const int c = queue.front();
                queue.pop_front();
                if (c < 0 || !visited.insert(c).second)
                    continue;
                const ClassInfo &cls =
                    classes_[static_cast<std::size_t>(c)];
                const auto member =
                    cls.members.find(call.receiver);
                if (member != cls.members.end()) {
                    type = member->second.type;
                    break;
                }
                for (const std::string &base : cls.bases)
                    queue.push_back(classByShortName(base));
            }
        }
    }
    if (!type.empty()) {
        const int cls = classOfType(type);
        if (cls >= 0)
            return method(cls, call.name);
    }

    // Unknown receiver type: resolve only when exactly one indexed
    // class defines the method, and the name is not a common std::
    // method (no false edges from `str.clear()` and friends).
    if (commonMethodNames().count(call.name))
        return -1;
    const auto it = nodesByShort_.find(call.name);
    if (it == nodesByShort_.end())
        return -1;
    int found = -1;
    for (const int id : it->second) {
        if (functions_[static_cast<std::size_t>(id)].classId < 0)
            continue;
        if (found >= 0)
            return -1;
        found = id;
    }
    return found;
}

SymbolIndex
SymbolIndex::build(const std::vector<SourceFile> &files)
{
    SymbolIndex index;
    IndexBuilder builder{index, files};
    // Headers first: class member types must be on record before a
    // .cc's bodies are scanned, or range-for element inference (and
    // any other member-type lookup made during body extraction)
    // would depend on the lexicographic file order, where "x.cc"
    // sorts before "x.hh".
    for (std::size_t f = 0; f < files.size(); ++f) {
        if (files[f].isHeader())
            builder.indexFile(files[f], static_cast<int>(f));
    }
    for (std::size_t f = 0; f < files.size(); ++f) {
        if (!files[f].isHeader())
            builder.indexFile(files[f], static_cast<int>(f));
    }
    builder.link();
    return index;
}

} // namespace critmem::analysis

/**
 * @file
 * Cross-translation-unit symbol index and call graph for the
 * SemanticRule family of critmem-lint (DESIGN.md section 13).
 *
 * Built on the same blanked-code view the lexical rules use — still
 * no libclang. A brace-driven scope scanner finds namespace, class
 * and function definitions; call sites inside each body are resolved
 * to graph nodes by scope heuristics (own class, base classes,
 * enclosing namespaces, receiver-type inference from member/param/
 * local declarations). Resolution is deliberately precision-first:
 * when a call cannot be attributed unambiguously, NO edge is added —
 * a false edge would fabricate a lint finding, a missing edge only
 * narrows coverage (the false-negative envelope is documented in
 * DESIGN.md). Overloads share one node, so overload ambiguity never
 * fabricates an edge either.
 */

#ifndef CRITMEM_ANALYSIS_SYMBOL_INDEX_HH
#define CRITMEM_ANALYSIS_SYMBOL_INDEX_HH

#include <map>
#include <string>
#include <vector>

#include "analysis/source_file.hh"

namespace critmem::analysis
{

/** One member-variable declaration inside a class. */
struct MemberVar
{
    std::string type;
    int line = 0;
};

/** One indexed class/struct definition. */
struct ClassInfo
{
    /** Fully qualified name, e.g. "critmem::sched::Bliss". */
    std::string qname;
    /** Last component of qname, e.g. "Bliss". */
    std::string shortName;
    /** Base-class short names, as resolved from the base list. */
    std::vector<std::string> bases;
    /** Member variables: name -> declared type. */
    std::map<std::string, MemberVar> members;
    int fileIndex = -1;
    int line = 0;
};

/** One parameter of a function definition. */
struct Param
{
    std::string type;
    std::string name;
};

/** One call site inside a function body. */
struct CallSite
{
    /** Callee identifier as written (last component). */
    std::string name;
    /** "A::B" qualifier text before the name ("" when none). */
    std::string qualifier;
    /** "", "this", a simple variable name, or "?" (complex expr). */
    std::string receiver;
    /** Top-level argument expressions, trimmed. */
    std::vector<std::string> args;
    /** True for constructor invocations (decl, new, make_unique). */
    bool ctor = false;
    int line = 0;
    /** Resolved callee node id, -1 when unresolved. */
    int callee = -1;
};

/** One definition (body) of a function; overloads each get one. */
struct FunctionDef
{
    int fileIndex = -1;
    /** First line of the head (the return-type line). */
    int headLine = 0;
    /** Line holding the function name. */
    int line = 0;
    int bodyBeginLine = 0;
    int bodyEndLine = 0;
    std::vector<Param> params;
    /** Local/param declarations: name -> declared type. */
    std::map<std::string, std::string> locals;
    std::vector<CallSite> calls;
};

/** One resolved call-graph edge (first witness per callee). */
struct Edge
{
    int callee = -1;
    /** Where the witnessing call site lives. */
    int fileIndex = -1;
    int line = 0;
};

/** One call-graph node: a function, overloads merged by qname. */
struct FunctionNode
{
    /** Fully qualified name, e.g. "critmem::Scheduler::pick". */
    std::string qname;
    /** Last component, e.g. "pick". */
    std::string shortName;
    /** Owning class id, -1 for a free function. */
    int classId = -1;
    std::vector<FunctionDef> defs;
    /** Resolved outgoing edges, sorted by callee id, unique. */
    std::vector<Edge> edges;
};

/** One step of a reconstructed call chain (for findings). */
struct ChainStep
{
    /** Qualified name of the function entered at this step. */
    std::string qname;
    /** Call site (or definition, for the entry) location. */
    std::string path;
    int line = 0;
};

/** The cross-TU index: every class and function, linked. */
class SymbolIndex
{
  public:
    /** Index @p files (the analyzer's loaded tree) and link calls. */
    static SymbolIndex build(const std::vector<SourceFile> &files);

    const std::vector<ClassInfo> &classes() const { return classes_; }
    const std::vector<FunctionNode> &functions() const
    {
        return functions_;
    }

    /** Class id with @p shortName; -1 when absent or ambiguous. */
    int classByShortName(const std::string &shortName) const;

    /**
     * Class id a declared-type string refers to: the last identifier
     * (digging through template arguments, pointers, references)
     * that names exactly one indexed class. -1 otherwise.
     */
    int classOfType(const std::string &type) const;

    /**
     * Ids of @p rootShortName's class and every class transitively
     * derived from it (by short-name base matching).
     */
    std::vector<int> family(const std::string &rootShortName) const;

    /**
     * Node id of method @p name on @p classId, walking base classes
     * when the class itself lacks it. -1 when not found.
     */
    int method(int classId, const std::string &name) const;

    /** Node ids of every method defined on @p classId (no bases). */
    std::vector<int> methods(int classId) const;

    /** Node id whose qname equals or ends in "::@p suffix"; unique. */
    int byQnameSuffix(const std::string &suffix) const;

    /** Node ids of every function with @p shortName. */
    std::vector<int> byShortName(const std::string &shortName) const;

    /** Innermost function definition covering @p line; -1 if none. */
    int enclosingFunction(int fileIndex, int line) const;

    /**
     * Multi-source shortest call chain from any node in @p entries
     * to @p target, as (function, call-site) steps starting at the
     * entry's definition. Empty when @p target is unreachable.
     */
    std::vector<ChainStep>
    chain(const std::vector<int> &entries, int target,
          const std::vector<SourceFile> &files) const;

    /** Node ids reachable from @p entries (including the entries). */
    std::vector<int> reachable(const std::vector<int> &entries) const;

  private:
    std::vector<ClassInfo> classes_;
    std::vector<FunctionNode> functions_;
    /** shortName -> class ids. */
    std::map<std::string, std::vector<int>> classesByShort_;
    /** shortName -> node ids. */
    std::map<std::string, std::vector<int>> nodesByShort_;
    /** qname -> node id. */
    std::map<std::string, int> nodeByQname_;

    int resolveCall(const FunctionNode &caller,
                    const FunctionDef &def, const CallSite &call,
                    const std::vector<SourceFile> &files) const;
    int methodNoWalk(int classId, const std::string &name) const;
    friend struct IndexBuilder;
};

/** What a SemanticRule may inspect: the loaded tree plus its index. */
struct SemanticModel
{
    const std::vector<SourceFile> *files = nullptr;
    SymbolIndex index;
};

} // namespace critmem::analysis

#endif // CRITMEM_ANALYSIS_SYMBOL_INDEX_HH

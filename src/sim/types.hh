/**
 * @file
 * Fundamental scalar types shared by every critmem module.
 */

#ifndef CRITMEM_SIM_TYPES_HH
#define CRITMEM_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace critmem
{

/** Physical (simulated) memory address, byte granularity. */
using Addr = std::uint64_t;

/** A time stamp in CPU clock cycles. */
using Cycle = std::uint64_t;

/** A time stamp in DRAM (bus) clock cycles. */
using DramCycle = std::uint64_t;

/** Identifier of a core (equivalently, a hardware thread). */
using CoreId = std::uint32_t;

/** Monotonically increasing per-core dynamic instruction number. */
using SeqNum = std::uint64_t;

/** Sentinel for "no cycle" / "never". */
inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/** Sentinel for an invalid address. */
inline constexpr Addr kNoAddr = std::numeric_limits<Addr>::max();

/** Sentinel for an invalid core. */
inline constexpr CoreId kNoCore = std::numeric_limits<CoreId>::max();

/**
 * Criticality magnitude attached to a memory request.
 *
 * Zero means "not critical"; larger values are more critical. The
 * scheduler treats this value as the upper bits of its age comparator
 * (Section 3.2 of the paper), so relative magnitude is all that
 * matters.
 */
using CritLevel = std::uint32_t;

} // namespace critmem

#endif // CRITMEM_SIM_TYPES_HH

#include "sim/log.hh"

namespace critmem
{

namespace
{
bool quietFlag = false;
} // namespace

void
setQuiet(bool q)
{
    quietFlag = q;
}

bool
quiet()
{
    return quietFlag;
}

void
detail::emit(std::string_view tag, const std::string &msg)
{
    if (tag == "info" && quietFlag)
        return;
    std::cerr << tag << ": " << msg << '\n';
}

} // namespace critmem

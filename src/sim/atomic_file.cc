
#include "sim/atomic_file.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

namespace critmem
{

namespace
{

[[noreturn]] void
fail(const std::string &what, const std::string &path)
{
    throw std::runtime_error(what + " '" + path +
                             "': " + std::strerror(errno));
}

/** Open @p path read-only, fsync it, close. */
void
syncFd(const std::string &path, int oflags)
{
    const int fd = ::open(path.c_str(), oflags);
    if (fd < 0)
        fail("cannot open for fsync", path);
    if (::fsync(fd) != 0) {
        const int err = errno;
        ::close(fd);
        errno = err;
        fail("fsync failed for", path);
    }
    // A failed close after a successful fsync can still mean the
    // kernel dropped deferred writeback errors; surface it.
    if (::close(fd) != 0)
        fail("close failed after fsync for", path);
}

std::string
parentDir(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

} // namespace

void
fsyncPath(const std::string &path)
{
    syncFd(path, O_WRONLY);
}

void
fsyncParentDir(const std::string &path)
{
    syncFd(parentDir(path), O_RDONLY | O_DIRECTORY);
}

AtomicFile::AtomicFile(std::string path)
    : path_(std::move(path)), tmpPath_(path_ + ".tmp")
{
    out_.open(tmpPath_, std::ios::binary | std::ios::trunc);
    if (!out_)
        fail("cannot open temp file", tmpPath_);
}

AtomicFile::~AtomicFile()
{
    if (!committed_ && !discarded_) {
        out_.close();
        ::unlink(tmpPath_.c_str());
    }
}

void
AtomicFile::discard()
{
    if (committed_ || discarded_)
        return;
    out_.close();
    ::unlink(tmpPath_.c_str());
    discarded_ = true;
}

void
AtomicFile::commit()
{
    if (committed_)
        return;
    if (discarded_)
        throw std::runtime_error("AtomicFile '" + path_ +
                                 "': commit after discard");
    out_.flush();
    if (!out_) {
        discard();
        fail("write failed for temp file", tmpPath_);
    }
    out_.close();
    // close() reports failure through the stream state; a file that
    // did not close cleanly must never be renamed over the target.
    if (out_.fail()) {
        ::unlink(tmpPath_.c_str());
        discarded_ = true;
        fail("close failed for temp file", tmpPath_);
    }
    try {
        fsyncPath(tmpPath_);
    } catch (...) {
        ::unlink(tmpPath_.c_str());
        discarded_ = true;
        throw;
    }
    if (std::rename(tmpPath_.c_str(), path_.c_str()) != 0) {
        ::unlink(tmpPath_.c_str());
        discarded_ = true;
        fail("cannot rename temp file over", path_);
    }
    // The rename is only durable once the directory entry is synced.
    fsyncParentDir(path_);
    committed_ = true;
}

void
AtomicFile::writeAll(const std::string &path, const std::string &content)
{
    AtomicFile file(path);
    file.stream() << content;
    file.commit();
}

} // namespace critmem

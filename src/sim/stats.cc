#include "sim/stats.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "sim/atomic_file.hh"

namespace critmem::stats
{

void
jsonEscape(std::ostream &os, const std::string &text)
{
    os << '"';
    for (const char c : text) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
jsonDouble(std::ostream &os, double value)
{
    if (!std::isfinite(value)) {
        os << "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    os << buf;
}

StatBase::StatBase(Group &parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    parent.addStat(this);
}

void
Scalar::print(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << ' ' << value_ << " # " << desc() << '\n';
}

void
Value::print(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << ' ' << value_ << " # " << desc() << '\n';
}

void
Value::printJson(std::ostream &os) const
{
    jsonDouble(os, value_);
}

void
Average::print(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << ' ' << mean() << " # " << desc()
       << " (samples=" << count_ << ")\n";
}

void
Scalar::printJson(std::ostream &os) const
{
    os << value_;
}

void
Average::printJson(std::ostream &os) const
{
    os << "{\"mean\":";
    jsonDouble(os, mean());
    os << ",\"sum\":";
    jsonDouble(os, sum_);
    os << ",\"count\":" << count_ << '}';
}

Histogram::Histogram(Group &parent, std::string name, std::string desc)
    : StatBase(parent, std::move(name), std::move(desc)), buckets_(65, 0)
{
}

void
Histogram::sample(std::uint64_t v)
{
    const std::size_t bucket = v == 0 ? 0 : std::bit_width(v);
    buckets_[bucket]++;
    ++count_;
    sum_ += static_cast<double>(v);
    max_ = std::max(max_, v);
}

void
Histogram::print(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << "::mean " << mean() << " # " << desc()
       << '\n'
       << prefix << name() << "::max " << max_ << " # " << desc()
       << '\n'
       << prefix << name() << "::samples " << count_ << " # " << desc()
       << '\n';
}

void
Histogram::printJson(std::ostream &os) const
{
    os << "{\"mean\":";
    jsonDouble(os, mean());
    os << ",\"max\":" << max_ << ",\"samples\":" << count_
       << ",\"buckets\":[";
    // Trailing empty buckets carry no information; trim them.
    std::size_t last = buckets_.size();
    while (last > 0 && buckets_[last - 1] == 0)
        --last;
    for (std::size_t i = 0; i < last; ++i)
        os << (i ? "," : "") << buckets_[i];
    os << "]}";
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    max_ = 0;
    sum_ = 0.0;
}

Group::Group(std::string name, Group *parent)
    : name_(std::move(name)), parent_(parent)
{
    if (parent_)
        parent_->addChild(this);
}

Group::~Group()
{
    if (parent_)
        parent_->removeChild(this);
}

void
Group::addStat(StatBase *stat)
{
    auto [it, inserted] = stats_.emplace(stat->name(), stat);
    if (!inserted)
        panic("duplicate stat name '", stat->name(), "' in group '",
              name_, "'");
    statsInOrder_.push_back(stat);
}

void
Group::addChild(Group *child)
{
    children_.push_back(child);
}

void
Group::removeChild(Group *child)
{
    std::erase(children_, child);
}

void
Group::print(std::ostream &os, const std::string &prefix) const
{
    const std::string here =
        name_.empty() ? prefix : prefix + name_ + '.';
    for (const auto *stat : statsInOrder_)
        stat->print(os, here);
    for (const auto *child : children_)
        child->print(os, here);
}

void
Group::printJson(std::ostream &os) const
{
    os << '{';
    bool first = true;
    for (const auto *stat : statsInOrder_) {
        os << (first ? "" : ",");
        first = false;
        jsonEscape(os, stat->name());
        os << ':';
        stat->printJson(os);
    }
    for (const auto *child : children_) {
        os << (first ? "" : ",");
        first = false;
        jsonEscape(os, child->name_);
        os << ':';
        child->printJson(os);
    }
    os << '}';
}

void
Group::resetAll()
{
    for (auto *stat : statsInOrder_)
        stat->reset();
    for (auto *child : children_)
        child->resetAll();
}

const StatBase *
Group::find(const std::string &path) const
{
    const auto dot = path.find('.');
    if (dot == std::string::npos) {
        const auto it = stats_.find(path);
        return it == stats_.end() ? nullptr : it->second;
    }
    const std::string head = path.substr(0, dot);
    for (const auto *child : children_) {
        if (child->name_ == head)
            return child->find(path.substr(dot + 1));
    }
    return nullptr;
}

const Scalar *
Group::findScalar(const std::string &path) const
{
    return dynamic_cast<const Scalar *>(find(path));
}

const Value *
Group::findValue(const std::string &path) const
{
    return dynamic_cast<const Value *>(find(path));
}

const Average *
Group::findAverage(const std::string &path) const
{
    return dynamic_cast<const Average *>(find(path));
}

const Histogram *
Group::findHistogram(const std::string &path) const
{
    return dynamic_cast<const Histogram *>(find(path));
}

void
writeJsonFile(const std::string &path, const Group &root)
{
    AtomicFile file(path);
    root.printJson(file.stream());
    file.stream() << '\n';
    file.commit();
}

} // namespace critmem::stats

/**
 * @file
 * Configuration structures for the whole simulated system, with
 * presets matching Tables 1 and 3 of the ISCA'13 paper.
 */

#ifndef CRITMEM_SIM_CONFIG_HH
#define CRITMEM_SIM_CONFIG_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace critmem
{

/** DDR3 speed grades evaluated in the paper (Section 5.6). */
enum class DramSpeed { DDR3_1066, DDR3_1600, DDR3_2133 };

/**
 * Physical address interleaving granularity.
 *
 * Page (Table 3): whole 1 KB rows rotate across channels — maximal
 * row-buffer locality for sequential streams. Block: consecutive
 * cache blocks rotate across channels — maximal channel-level
 * parallelism at the cost of row locality (an ablation knob).
 */
enum class AddressMapKind { PageInterleave, BlockInterleave };

/** @return printable name of a speed grade. */
const char *toString(DramSpeed speed);

/** CLI/spec name of a speed grade (e.g. "ddr3-2133"). */
const char *cliName(DramSpeed speed);

/** Look up a speed grade by CLI/spec name; nullopt when unknown. */
std::optional<DramSpeed> findDramSpeed(const std::string &name);

/**
 * One structured configuration error: the offending field and a
 * human-readable explanation. validate() returns every problem at
 * once so a user can fix a config in one pass.
 */
struct ConfigError
{
    std::string field;
    std::string message;
};

using ConfigErrors = std::vector<ConfigError>;

/**
 * DDR3 timing parameters, all expressed in DRAM (bus) clock cycles.
 * Values for DDR3-2133 come directly from Table 3; the slower grades
 * scale to (approximately) constant nanoseconds.
 */
struct DramTiming
{
    std::uint32_t tRCD = 14;  ///< ACT to internal RD/WR delay
    std::uint32_t tCL = 14;   ///< CAS (read) latency
    std::uint32_t tWL = 7;    ///< write latency
    std::uint32_t tCCD = 4;   ///< CAS-to-CAS delay
    std::uint32_t tWTR = 8;   ///< write-to-read turnaround (same rank)
    std::uint32_t tWR = 16;   ///< write recovery before PRE
    std::uint32_t tRTP = 8;   ///< read-to-precharge
    std::uint32_t tRP = 14;   ///< precharge period
    std::uint32_t tRRD = 6;   ///< ACT-to-ACT, same rank
    std::uint32_t tFAW = 27;  ///< four-activate window, same rank (25ns)
    std::uint32_t tRTRS = 2;  ///< rank-to-rank data-bus switch
    std::uint32_t tRAS = 36;  ///< ACT-to-PRE minimum
    std::uint32_t tRC = 50;   ///< ACT-to-ACT, same bank
    std::uint32_t tRFC = 118; ///< refresh cycle time
    std::uint32_t tREFI = 8328; ///< average refresh interval (64ms/8192)
    std::uint32_t burstLength = 8; ///< BL8: data occupies 4 bus cycles

    /** Bus cycles the data bus is busy per CAS (DDR: BL/2). */
    // lint:allow(narrow-cycle): burst duration, bounded by BL/2 <= 4
    std::uint32_t dataCycles() const { return burstLength / 2; }

    /** Append structured errors for inconsistent timing parameters. */
    void validate(ConfigErrors &errors) const;
};

/** DRAM organization + timing (Table 3). */
struct DramConfig
{
    DramSpeed speed = DramSpeed::DDR3_2133;
    std::uint32_t busMHz = 1066;       ///< bus clock (data rate is 2x)
    std::uint32_t channels = 4;        ///< 2 for quad-core bundles
    std::uint32_t ranksPerChannel = 4; ///< quad rank per channel
    std::uint32_t banksPerRank = 8;
    std::uint32_t rowBytes = 1024;     ///< row buffer size
    std::uint32_t queueEntries = 64;   ///< transaction queue entries
    /**
     * Row policy: open page (Table 3) keeps rows open after a CAS;
     * closed page auto-precharges when no other queued transaction
     * targets the open row, trading row-hit opportunity for faster
     * conflicts (an ablation knob, not a paper configuration).
     */
    bool closedPage = false;
    /** Interleaving granularity (page per Table 3). */
    AddressMapKind mapKind = AddressMapKind::PageInterleave;
    /**
     * True (the paper's Table 3 controller): one 64-entry transaction
     * queue; writebacks arbitrate like any other transaction, so they
     * delay reads. False: a modern split write buffer drained under a
     * high/low watermark, which keeps writes off the read path.
     */
    bool unifiedQueue = true;
    /**
     * Forward-progress watchdog: a channel with queued work that
     * issues no command and pops no completion for this many DRAM
     * cycles reports a stall to its observer (see src/check/).
     * 0 disables the watchdog; CheckConfig::watchdogCycles is copied
     * here when checking is enabled system-wide.
     */
    std::uint64_t watchdogCycles = 0;
    DramTiming t;

    /** Construct the timing/bus parameters for a speed grade. */
    static DramConfig preset(DramSpeed speed);

    /** Append structured errors for out-of-range geometry/timing. */
    void validate(ConfigErrors &errors) const;
};

/** One level of cache (Tables 1 and 3). */
struct CacheConfig
{
    std::uint32_t sizeBytes = 0;
    std::uint32_t blockBytes = 64;
    std::uint32_t ways = 1;            ///< 1 = direct-mapped
    std::uint32_t latency = 1;         ///< round-trip, uncontended
    std::uint32_t mshrs = 16;
    std::uint32_t ports = 1;

    std::uint32_t sets() const { return sizeBytes / (blockBytes * ways); }

    /** Append structured errors; @p name labels the cache level. */
    void validate(const std::string &name, ConfigErrors &errors) const;
};

/** L2 stream prefetcher (Section 5.5; Srinath et al. style). */
struct PrefetchConfig
{
    bool enabled = false;
    std::uint32_t streams = 64;
    /**
     * Blocks ahead of the demand stream. The paper's aggressive
     * configuration uses 64, sized for 500M-instruction runs; the
     * default here is scaled to this simulator's shorter measurement
     * windows so that prefetches land before their demands arrive
     * (see DESIGN.md). Set to 64 to mirror the paper verbatim.
     */
    std::uint32_t distance = 8;
    std::uint32_t degree = 4;     ///< prefetches issued per trigger
};

/** Out-of-order core microarchitecture (Table 1). */
struct CoreConfig
{
    std::uint32_t freqMHz = 4266;       ///< 4.27 GHz
    std::uint32_t fetchWidth = 4;
    std::uint32_t issueWidth = 4;
    std::uint32_t commitWidth = 4;
    std::uint32_t robEntries = 128;
    std::uint32_t intIqEntries = 32;
    std::uint32_t fpIqEntries = 32;
    std::uint32_t lqEntries = 32;
    std::uint32_t sqEntries = 32;
    std::uint32_t intAlus = 2;
    std::uint32_t fpAlus = 2;
    std::uint32_t loadPorts = 2;
    std::uint32_t storePorts = 2;
    std::uint32_t branchUnits = 2;
    std::uint32_t intMuls = 1;
    std::uint32_t fpMuls = 1;
    std::uint32_t maxUnresolvedBranches = 24;
    std::uint32_t mispredictPenalty = 9;

    /** Append structured errors for degenerate core parameters. */
    void validate(ConfigErrors &errors) const;
};

/** Which criticality source feeds the memory scheduler (Section 2/3). */
enum class CritPredictor
{
    None,           ///< plain scheduler, no criticality
    NaiveForward,   ///< Sec 5.1: flag sent only once a load blocks
    CbpBinary,      ///< CBP, 1-bit annotation
    CbpBlockCount,  ///< CBP, # times load blocked the ROB head
    CbpLastStall,   ///< CBP, most recent stall duration
    CbpMaxStall,    ///< CBP, largest observed stall duration
    CbpTotalStall,  ///< CBP, accumulated stall cycles
    ClptBinary,     ///< Subramaniam et al. [29], binary threshold
    ClptConsumers,  ///< CLPT with consumer count as magnitude
};

const char *toString(CritPredictor pred);

/** One registered criticality predictor. */
struct PredictorInfo
{
    CritPredictor pred;
    /** Stable lower-case name used by CLIs and sweep specs. */
    const char *cliName;
    /** One-line description for --list output. */
    const char *desc;
};

/** Every predictor, in the CritPredictor declaration order. */
const std::vector<PredictorInfo> &predictorRegistry();

/** CLI/spec name of @p pred (e.g. "maxstall"). */
const char *cliName(CritPredictor pred);

/** Look up a predictor by CLI/spec name; nullopt when unknown. */
std::optional<CritPredictor> findCritPredictor(const std::string &name);

/** @return true when the predictor is one of the CBP annotations. */
bool isCbp(CritPredictor pred);

/** Criticality predictor configuration (Section 3). */
struct CritConfig
{
    CritPredictor predictor = CritPredictor::None;
    /** CBP/CLPT entries; 0 selects the unlimited fully-assoc. table. */
    std::uint32_t tableEntries = 64;
    /** Periodic full reset interval in CPU cycles; 0 disables. */
    std::uint64_t resetInterval = 0;
    /** CLPT: minimum direct consumers to mark a load critical. */
    std::uint32_t clptThreshold = 3;
    /**
     * Hardware counter width in bits; values saturate at 2^width - 1.
     * 0 = unbounded (the paper's main configurations, which instead
     * size the counter for the largest observed value, Table 5).
     * Section 5.3 mentions saturation as an unexplored option; the
     * bench_ext_cbp experiment explores it.
     */
    std::uint32_t counterWidth = 0;
    /**
     * Probabilistic accumulation for BlockCount/TotalStallTime (Riley
     * & Zilles [21], the other unexplored Section 5.3 option): apply
     * each update with probability 2^-probShift, scaled by 2^probShift
     * — an unbiased estimate that lets narrow counters track large
     * totals. 0 disables.
     */
    std::uint32_t probShift = 0;
};

/** Memory scheduling algorithms (Sections 3.2 and 5.8). */
enum class SchedAlgo
{
    Fcfs,          ///< strict oldest-first (lower-bound baseline)
    FrFcfs,        ///< baseline [22]
    CritCasRas,    ///< critical first, then CAS-over-RAS
    CasRasCrit,    ///< CAS-over-RAS first, criticality breaks ties
    ParBs,         ///< parallelism-aware batch scheduling [17]
    Tcm,           ///< thread cluster memory scheduling [12]
    TcmCrit,       ///< TCM + criticality-aware FR-FCFS tiebreak
    Ahb,           ///< adaptive history-based [8]
    Morse,         ///< self-optimizing RL scheduler [9,16]
    CritRl,        ///< MORSE + criticality features (Table 6)
    Atlas,         ///< least-attained-service ranking [11]
    Minimalist,    ///< MLP-ranked minimalist open-page [10]
    Bliss,         ///< blacklisting scheduler (Subramanian et al.)
    BatchCapRr,    ///< capped per-core batches served round-robin
    DynThreshCrit, ///< criticality FR-FCFS with adaptive threshold
};

const char *toString(SchedAlgo algo);

/** Scheduler configuration. */
struct SchedConfig
{
    SchedAlgo algo = SchedAlgo::FrFcfs;
    /** Starvation cap for non-critical requests, DRAM cycles. */
    std::uint32_t starvationCap = 6000;
    /** PAR-BS marking cap (requests marked per thread per bank). */
    std::uint32_t parbsMarkingCap = 5;
    /** TCM: re-clustering quantum in DRAM cycles. */
    std::uint32_t tcmQuantum = 100000;
    /** TCM: latency-cluster bandwidth share threshold. */
    double tcmClusterThresh = 0.10;
    /** MORSE: ready commands evaluable per DRAM cycle (Fig. 11). */
    std::uint32_t morseMaxCommands = 24;
    /** BLISS: consecutive same-core CAS issues before blacklisting. */
    std::uint32_t blissThreshold = 4;
    /** BLISS: blacklist clearing interval in DRAM cycles. */
    std::uint32_t blissClearInterval = 10000;
    /** Batch-cap RR: CAS issues served per core before rotating. */
    std::uint32_t batchCap = 8;
    /** Dyn-thresh: adaptation epoch in DRAM cycles. */
    std::uint32_t dynThreshEpoch = 50000;
    /** Dyn-thresh: target percentage of CAS issues treated critical. */
    std::uint32_t dynThreshTargetPct = 25;
};

/**
 * Deliberate misbehaviours the fault-injection layer can introduce,
 * used to prove that each checker rule actually fires (src/check/).
 */
enum class FaultKind
{
    None,            ///< no fault injection
    DropCompletion,  ///< swallow a finished read's completion callback
    EarlyCas,        ///< issue a CAS one DRAM cycle before it is legal
    SkipRefresh,     ///< silently skip a due refresh
    StarveCore,      ///< never schedule requests from a victim core
    FlipCrit,        ///< zero a criticality level during promotion
    CrashWorker,     ///< raise SIGSEGV mid-simulation (containment test)
    HogMemory,       ///< allocate unboundedly mid-simulation (oom test)
};

const char *toString(FaultKind kind);

/** Look up a fault kind by its toString() name; nullopt if unknown. */
std::optional<FaultKind> findFaultKind(const std::string &name);

/**
 * Validation-harness configuration: the DRAM protocol invariant
 * checker, the forward-progress watchdog, and fault injection.
 */
struct CheckConfig
{
    /** Attach the ProtocolChecker (and watchdog) to every channel. */
    bool enabled = false;
    /** Throw CheckViolation on the first violation (else record). */
    bool failFast = true;
    /** DRAM cycles a non-idle channel may go without any command. */
    std::uint64_t watchdogCycles = 200000;
    /** CPU cycles the whole system may go without a single commit. */
    std::uint64_t commitWatchdogCycles = 4'000'000;
    /** Max DRAM cycles any request may sit in a transaction queue. */
    std::uint64_t starvationCycles = 200000;
    /** Allowed refresh-interval overshoot past tREFI, DRAM cycles. */
    std::uint64_t refreshSlack = 2000;
    /** Cap on stored violation records (counting continues past it). */
    std::uint32_t maxViolations = 64;

    /** Which fault to inject; None leaves the channel honest. */
    FaultKind fault = FaultKind::None;
    /** Mean opportunities between injections (1 = every time). */
    std::uint64_t faultPeriod = 64;
    /** Seed of the injector's private Rng. */
    std::uint64_t faultSeed = 12345;
    /** Victim core for FaultKind::StarveCore. */
    CoreId faultVictim = 0;

    /** Append structured errors for inconsistent checker settings. */
    void validate(ConfigErrors &errors) const;
};

/** Whole-system configuration. */
struct SystemConfig
{
    std::uint32_t numCores = 8;
    std::uint64_t seed = 1;
    /**
     * Event-driven cycle skipping: run() fast-forwards across windows
     * every component certifies idle via nextEventCycle(). Statistics
     * are bulk-replayed, so results are bit-identical with the flag
     * off (enforced by the Skip.Equivalence test); disable to force
     * the plain tick-every-cycle loop when debugging.
     */
    bool fastForward = true;
    CoreConfig core;
    CacheConfig il1;
    CacheConfig dl1;
    CacheConfig l2;
    PrefetchConfig prefetch;
    DramConfig dram;
    SchedConfig sched;
    CritConfig crit;
    CheckConfig check;

    /** CPU cycles per DRAM bus cycle, rounded to nearest integer. */
    std::uint32_t
    cpuPerDramCycle() const
    {
        return (core.freqMHz + dram.busMHz / 2) / dram.busMHz;
    }

    /**
     * Paper-default 8-core system: Table 1 core, 32 kB L1s, 4 MB
     * shared L2, quad-channel quad-rank DDR3-2133 (Table 3).
     */
    static SystemConfig parallelDefault();

    /**
     * 4-core multiprogrammed variant (Section 5.8.2): two DRAM
     * channels and half the L2 MSHRs, preserving the 2:1 core:channel
     * ratio.
     */
    static SystemConfig multiprogDefault();

    /**
     * Validate every configuration block. Returns all problems found
     * (empty = valid). Call before constructing a System; every entry
     * point (critmem_cli, experiment helpers, bench harness) does.
     */
    ConfigErrors validate() const;
};

/** fatal() with every validation error when @p cfg is inconsistent. */
void validateOrFatal(const SystemConfig &cfg);

} // namespace critmem

#endif // CRITMEM_SIM_CONFIG_HH

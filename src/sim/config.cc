#include "config.hh"

#include <cmath>

#include "sim/log.hh"

namespace critmem
{

const char *
toString(DramSpeed speed)
{
    switch (speed) {
      case DramSpeed::DDR3_1066: return "DDR3-1066";
      case DramSpeed::DDR3_1600: return "DDR3-1600";
      case DramSpeed::DDR3_2133: return "DDR3-2133";
    }
    return "DDR3-?";
}

const char *
toString(CritPredictor pred)
{
    switch (pred) {
      case CritPredictor::None:          return "None";
      case CritPredictor::NaiveForward:  return "NaiveForward";
      case CritPredictor::CbpBinary:     return "Binary";
      case CritPredictor::CbpBlockCount: return "BlockCount";
      case CritPredictor::CbpLastStall:  return "LastStallTime";
      case CritPredictor::CbpMaxStall:   return "MaxStallTime";
      case CritPredictor::CbpTotalStall: return "TotalStallTime";
      case CritPredictor::ClptBinary:    return "CLPT-Binary";
      case CritPredictor::ClptConsumers: return "CLPT-Consumers";
    }
    return "?";
}

bool
isCbp(CritPredictor pred)
{
    switch (pred) {
      case CritPredictor::CbpBinary:
      case CritPredictor::CbpBlockCount:
      case CritPredictor::CbpLastStall:
      case CritPredictor::CbpMaxStall:
      case CritPredictor::CbpTotalStall:
        return true;
      default:
        return false;
    }
}

const char *
toString(SchedAlgo algo)
{
    switch (algo) {
      case SchedAlgo::Fcfs:       return "FCFS";
      case SchedAlgo::FrFcfs:     return "FR-FCFS";
      case SchedAlgo::CritCasRas: return "Crit-CASRAS";
      case SchedAlgo::CasRasCrit: return "CASRAS-Crit";
      case SchedAlgo::ParBs:      return "PAR-BS";
      case SchedAlgo::Tcm:        return "TCM";
      case SchedAlgo::TcmCrit:    return "TCM+Crit";
      case SchedAlgo::Ahb:        return "AHB";
      case SchedAlgo::Morse:      return "MORSE-P";
      case SchedAlgo::CritRl:     return "Crit-RL";
      case SchedAlgo::Atlas:      return "ATLAS";
      case SchedAlgo::Minimalist: return "Minimalist";
    }
    return "?";
}

namespace
{

/**
 * Scale a DDR3-2133 cycle count to another bus frequency at constant
 * latency in nanoseconds, rounding up as a real controller would.
 */
std::uint32_t
scaleCycles(std::uint32_t cycles2133, std::uint32_t busMHz)
{
    const double ns = static_cast<double>(cycles2133) / 1066.0 * 1000.0;
    return static_cast<std::uint32_t>(
        std::ceil(ns * busMHz / 1000.0 - 1e-9));
}

} // namespace

DramConfig
DramConfig::preset(DramSpeed speed)
{
    DramConfig cfg;
    cfg.speed = speed;
    switch (speed) {
      case DramSpeed::DDR3_2133: cfg.busMHz = 1066; break;
      case DramSpeed::DDR3_1600: cfg.busMHz = 800; break;
      case DramSpeed::DDR3_1066: cfg.busMHz = 533; break;
    }
    if (speed != DramSpeed::DDR3_2133) {
        DramTiming t; // DDR3-2133 reference values from Table 3
        cfg.t.tRCD = scaleCycles(t.tRCD, cfg.busMHz);
        cfg.t.tCL = scaleCycles(t.tCL, cfg.busMHz);
        cfg.t.tWL = scaleCycles(t.tWL, cfg.busMHz);
        cfg.t.tCCD = std::max(scaleCycles(t.tCCD, cfg.busMHz), 4u);
        cfg.t.tWTR = scaleCycles(t.tWTR, cfg.busMHz);
        cfg.t.tWR = scaleCycles(t.tWR, cfg.busMHz);
        cfg.t.tRTP = scaleCycles(t.tRTP, cfg.busMHz);
        cfg.t.tRP = scaleCycles(t.tRP, cfg.busMHz);
        cfg.t.tRRD = scaleCycles(t.tRRD, cfg.busMHz);
        cfg.t.tRTRS = scaleCycles(t.tRTRS, cfg.busMHz);
        cfg.t.tRAS = scaleCycles(t.tRAS, cfg.busMHz);
        cfg.t.tRC = scaleCycles(t.tRC, cfg.busMHz);
        cfg.t.tRFC = scaleCycles(t.tRFC, cfg.busMHz);
        cfg.t.tREFI = scaleCycles(t.tREFI, cfg.busMHz);
    }
    return cfg;
}

SystemConfig
SystemConfig::parallelDefault()
{
    SystemConfig cfg;
    cfg.numCores = 8;

    cfg.il1.sizeBytes = 32 * 1024;
    cfg.il1.blockBytes = 32;
    cfg.il1.ways = 1;
    cfg.il1.latency = 2;
    cfg.il1.mshrs = 16;
    cfg.il1.ports = 1;

    cfg.dl1.sizeBytes = 32 * 1024;
    cfg.dl1.blockBytes = 32;
    cfg.dl1.ways = 4;
    cfg.dl1.latency = 3;
    cfg.dl1.mshrs = 16;
    cfg.dl1.ports = 2;

    cfg.l2.sizeBytes = 4 * 1024 * 1024;
    cfg.l2.blockBytes = 64;
    cfg.l2.ways = 8;
    cfg.l2.latency = 32;
    cfg.l2.mshrs = 64;
    cfg.l2.ports = 4;

    cfg.dram = DramConfig::preset(DramSpeed::DDR3_2133);
    return cfg;
}

SystemConfig
SystemConfig::multiprogDefault()
{
    SystemConfig cfg = parallelDefault();
    cfg.numCores = 4;
    cfg.dram.channels = 2;
    cfg.l2.mshrs = 32;
    return cfg;
}

} // namespace critmem

#include "sim/config.hh"

#include <cmath>

#include "sim/log.hh"

namespace critmem
{

const char *
toString(DramSpeed speed)
{
    switch (speed) {
      case DramSpeed::DDR3_1066: return "DDR3-1066";
      case DramSpeed::DDR3_1600: return "DDR3-1600";
      case DramSpeed::DDR3_2133: return "DDR3-2133";
    }
    return "DDR3-?";
}

const char *
cliName(DramSpeed speed)
{
    switch (speed) {
      case DramSpeed::DDR3_1066: return "ddr3-1066";
      case DramSpeed::DDR3_1600: return "ddr3-1600";
      case DramSpeed::DDR3_2133: return "ddr3-2133";
    }
    return "?";
}

std::optional<DramSpeed>
findDramSpeed(const std::string &name)
{
    if (name == "ddr3-1066") return DramSpeed::DDR3_1066;
    if (name == "ddr3-1600") return DramSpeed::DDR3_1600;
    if (name == "ddr3-2133") return DramSpeed::DDR3_2133;
    return std::nullopt;
}

const char *
toString(CritPredictor pred)
{
    switch (pred) {
      case CritPredictor::None:          return "None";
      case CritPredictor::NaiveForward:  return "NaiveForward";
      case CritPredictor::CbpBinary:     return "Binary";
      case CritPredictor::CbpBlockCount: return "BlockCount";
      case CritPredictor::CbpLastStall:  return "LastStallTime";
      case CritPredictor::CbpMaxStall:   return "MaxStallTime";
      case CritPredictor::CbpTotalStall: return "TotalStallTime";
      case CritPredictor::ClptBinary:    return "CLPT-Binary";
      case CritPredictor::ClptConsumers: return "CLPT-Consumers";
    }
    return "?";
}

const std::vector<PredictorInfo> &
predictorRegistry()
{
    static const std::vector<PredictorInfo> registry = {
        {CritPredictor::None, "none",
         "no criticality information"},
        {CritPredictor::NaiveForward, "naive",
         "Sec 5.1: flag sent only once a load blocks"},
        {CritPredictor::CbpBinary, "binary",
         "CBP, 1-bit annotation"},
        {CritPredictor::CbpBlockCount, "blockcount",
         "CBP, # times load blocked the ROB head"},
        {CritPredictor::CbpLastStall, "laststall",
         "CBP, most recent stall duration"},
        {CritPredictor::CbpMaxStall, "maxstall",
         "CBP, largest observed stall duration (the paper's best)"},
        {CritPredictor::CbpTotalStall, "totalstall",
         "CBP, accumulated stall cycles"},
        {CritPredictor::ClptBinary, "clpt-binary",
         "Subramaniam et al. [29], binary threshold"},
        {CritPredictor::ClptConsumers, "clpt-consumers",
         "CLPT with consumer count as magnitude"},
    };
    return registry;
}

const char *
cliName(CritPredictor pred)
{
    for (const PredictorInfo &info : predictorRegistry()) {
        if (info.pred == pred)
            return info.cliName;
    }
    return "?";
}

std::optional<CritPredictor>
findCritPredictor(const std::string &name)
{
    for (const PredictorInfo &info : predictorRegistry()) {
        if (name == info.cliName)
            return info.pred;
    }
    return std::nullopt;
}

bool
isCbp(CritPredictor pred)
{
    switch (pred) {
      case CritPredictor::CbpBinary:
      case CritPredictor::CbpBlockCount:
      case CritPredictor::CbpLastStall:
      case CritPredictor::CbpMaxStall:
      case CritPredictor::CbpTotalStall:
        return true;
      default:
        return false;
    }
}

const char *
toString(SchedAlgo algo)
{
    switch (algo) {
      case SchedAlgo::Fcfs:       return "FCFS";
      case SchedAlgo::FrFcfs:     return "FR-FCFS";
      case SchedAlgo::CritCasRas: return "Crit-CASRAS";
      case SchedAlgo::CasRasCrit: return "CASRAS-Crit";
      case SchedAlgo::ParBs:      return "PAR-BS";
      case SchedAlgo::Tcm:        return "TCM";
      case SchedAlgo::TcmCrit:    return "TCM+Crit";
      case SchedAlgo::Ahb:        return "AHB";
      case SchedAlgo::Morse:      return "MORSE-P";
      case SchedAlgo::CritRl:     return "Crit-RL";
      case SchedAlgo::Atlas:      return "ATLAS";
      case SchedAlgo::Minimalist: return "Minimalist";
      case SchedAlgo::Bliss:      return "BLISS";
      case SchedAlgo::BatchCapRr: return "BatchCap-RR";
      case SchedAlgo::DynThreshCrit: return "DynThresh-Crit";
    }
    return "?";
}

const char *
toString(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None:           return "none";
      case FaultKind::DropCompletion: return "drop-completion";
      case FaultKind::EarlyCas:       return "early-cas";
      case FaultKind::SkipRefresh:    return "skip-refresh";
      case FaultKind::StarveCore:     return "starve-core";
      case FaultKind::FlipCrit:       return "flip-crit";
      case FaultKind::CrashWorker:    return "crash-worker";
      case FaultKind::HogMemory:      return "hog-memory";
    }
    return "?";
}

std::optional<FaultKind>
findFaultKind(const std::string &name)
{
    for (const FaultKind kind :
         {FaultKind::DropCompletion, FaultKind::EarlyCas,
          FaultKind::SkipRefresh, FaultKind::StarveCore,
          FaultKind::FlipCrit, FaultKind::CrashWorker,
          FaultKind::HogMemory}) {
        if (name == toString(kind))
            return kind;
    }
    return std::nullopt;
}

namespace
{

/**
 * Scale a DDR3-2133 cycle count to another bus frequency at constant
 * latency in nanoseconds, rounding up as a real controller would.
 */
std::uint32_t
// lint:allow(narrow-cycle): scales bounded Table 3 timing parameters
scaleCycles(std::uint32_t cycles2133, std::uint32_t busMHz)
{
    const double ns = static_cast<double>(cycles2133) / 1066.0 * 1000.0;
    return static_cast<std::uint32_t>(
        std::ceil(ns * busMHz / 1000.0 - 1e-9));
}

} // namespace

DramConfig
DramConfig::preset(DramSpeed speed)
{
    DramConfig cfg;
    cfg.speed = speed;
    switch (speed) {
      case DramSpeed::DDR3_2133: cfg.busMHz = 1066; break;
      case DramSpeed::DDR3_1600: cfg.busMHz = 800; break;
      case DramSpeed::DDR3_1066: cfg.busMHz = 533; break;
    }
    if (speed != DramSpeed::DDR3_2133) {
        DramTiming t; // DDR3-2133 reference values from Table 3
        cfg.t.tRCD = scaleCycles(t.tRCD, cfg.busMHz);
        cfg.t.tCL = scaleCycles(t.tCL, cfg.busMHz);
        cfg.t.tWL = scaleCycles(t.tWL, cfg.busMHz);
        cfg.t.tCCD = std::max(scaleCycles(t.tCCD, cfg.busMHz), 4u);
        cfg.t.tWTR = scaleCycles(t.tWTR, cfg.busMHz);
        cfg.t.tWR = scaleCycles(t.tWR, cfg.busMHz);
        cfg.t.tRTP = scaleCycles(t.tRTP, cfg.busMHz);
        cfg.t.tRP = scaleCycles(t.tRP, cfg.busMHz);
        cfg.t.tRRD = scaleCycles(t.tRRD, cfg.busMHz);
        cfg.t.tFAW = scaleCycles(t.tFAW, cfg.busMHz);
        cfg.t.tRTRS = scaleCycles(t.tRTRS, cfg.busMHz);
        cfg.t.tRAS = scaleCycles(t.tRAS, cfg.busMHz);
        // Independent round-up can leave tRC a cycle short of
        // tRAS + tRP (e.g. DDR3-1600: 38 < 28 + 11); a real row
        // cycle can never beat restore + precharge, so clamp.
        cfg.t.tRC = std::max(scaleCycles(t.tRC, cfg.busMHz),
                             cfg.t.tRAS + cfg.t.tRP);
        cfg.t.tRFC = scaleCycles(t.tRFC, cfg.busMHz);
        cfg.t.tREFI = scaleCycles(t.tREFI, cfg.busMHz);
    }
    return cfg;
}

SystemConfig
SystemConfig::parallelDefault()
{
    SystemConfig cfg;
    cfg.numCores = 8;

    cfg.il1.sizeBytes = 32 * 1024;
    cfg.il1.blockBytes = 32;
    cfg.il1.ways = 1;
    cfg.il1.latency = 2;
    cfg.il1.mshrs = 16;
    cfg.il1.ports = 1;

    cfg.dl1.sizeBytes = 32 * 1024;
    cfg.dl1.blockBytes = 32;
    cfg.dl1.ways = 4;
    cfg.dl1.latency = 3;
    cfg.dl1.mshrs = 16;
    cfg.dl1.ports = 2;

    cfg.l2.sizeBytes = 4 * 1024 * 1024;
    cfg.l2.blockBytes = 64;
    cfg.l2.ways = 8;
    cfg.l2.latency = 32;
    cfg.l2.mshrs = 64;
    cfg.l2.ports = 4;

    cfg.dram = DramConfig::preset(DramSpeed::DDR3_2133);
    return cfg;
}

SystemConfig
SystemConfig::multiprogDefault()
{
    SystemConfig cfg = parallelDefault();
    cfg.numCores = 4;
    cfg.dram.channels = 2;
    cfg.l2.mshrs = 32;
    return cfg;
}

namespace
{

void
addError(ConfigErrors &errors, std::string field, std::string message)
{
    errors.push_back(ConfigError{std::move(field), std::move(message)});
}

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

void
DramTiming::validate(ConfigErrors &errors) const
{
    const struct { const char *name; std::uint32_t value; } nonzero[] = {
        {"tRCD", tRCD}, {"tCL", tCL}, {"tWL", tWL}, {"tCCD", tCCD},
        {"tWTR", tWTR}, {"tWR", tWR}, {"tRTP", tRTP}, {"tRP", tRP},
        {"tRRD", tRRD}, {"tFAW", tFAW}, {"tRAS", tRAS}, {"tRC", tRC},
        {"tRFC", tRFC}, {"tREFI", tREFI},
    };
    for (const auto &[name, value] : nonzero) {
        if (value == 0)
            addError(errors, std::string("dram.t.") + name,
                     "must be nonzero");
    }
    if (burstLength == 0 || burstLength % 2 != 0)
        addError(errors, "dram.t.burstLength",
                 "must be a nonzero even burst length");
    if (tRAS < tRCD + tCCD)
        addError(errors, "dram.t.tRAS",
                 "row must stay open at least tRCD + tCCD to serve one "
                 "CAS (tRAS >= tRCD + tCCD)");
    if (tRC < tRAS + tRP)
        addError(errors, "dram.t.tRC",
                 "ACT-to-ACT must cover the row cycle (tRC >= tRAS + "
                 "tRP)");
    if (tFAW < tRRD)
        addError(errors, "dram.t.tFAW",
                 "four-activate window cannot be shorter than tRRD");
    if (tREFI <= tRFC)
        addError(errors, "dram.t.tREFI",
                 "refresh interval must exceed the refresh cycle time");
}

void
DramConfig::validate(ConfigErrors &errors) const
{
    if (busMHz == 0)
        addError(errors, "dram.busMHz", "must be nonzero");
    if (channels == 0)
        addError(errors, "dram.channels", "must be nonzero");
    if (ranksPerChannel == 0)
        addError(errors, "dram.ranksPerChannel", "must be nonzero");
    if (banksPerRank == 0)
        addError(errors, "dram.banksPerRank", "must be nonzero");
    if (!isPow2(rowBytes))
        addError(errors, "dram.rowBytes",
                 "must be a nonzero power of two");
    if (queueEntries == 0)
        addError(errors, "dram.queueEntries", "must be nonzero");
    t.validate(errors);
}

void
CacheConfig::validate(const std::string &name,
                      ConfigErrors &errors) const
{
    if (!isPow2(blockBytes))
        addError(errors, name + ".blockBytes",
                 "must be a nonzero power of two");
    if (ways == 0)
        addError(errors, name + ".ways", "must be nonzero");
    if (sizeBytes == 0)
        addError(errors, name + ".sizeBytes", "must be nonzero");
    else if (blockBytes != 0 && ways != 0 &&
             (sizeBytes % (blockBytes * ways) != 0 ||
              sets() == 0 || !isPow2(sets())))
        addError(errors, name + ".sizeBytes",
                 "must yield a nonzero power-of-two set count "
                 "(sizeBytes / (blockBytes * ways))");
    if (mshrs == 0)
        addError(errors, name + ".mshrs", "must be nonzero");
    if (ports == 0)
        addError(errors, name + ".ports", "must be nonzero");
}

void
CoreConfig::validate(ConfigErrors &errors) const
{
    const struct { const char *name; std::uint32_t value; } nonzero[] = {
        {"freqMHz", freqMHz}, {"fetchWidth", fetchWidth},
        {"issueWidth", issueWidth}, {"commitWidth", commitWidth},
        {"robEntries", robEntries}, {"intIqEntries", intIqEntries},
        {"fpIqEntries", fpIqEntries}, {"lqEntries", lqEntries},
        {"sqEntries", sqEntries}, {"intAlus", intAlus},
        {"fpAlus", fpAlus}, {"loadPorts", loadPorts},
        {"storePorts", storePorts}, {"branchUnits", branchUnits},
        {"intMuls", intMuls}, {"fpMuls", fpMuls},
        {"maxUnresolvedBranches", maxUnresolvedBranches},
    };
    for (const auto &[name, value] : nonzero) {
        if (value == 0)
            addError(errors, std::string("core.") + name,
                     "must be nonzero");
    }
    if (robEntries < fetchWidth)
        addError(errors, "core.robEntries",
                 "must hold at least one fetch group");
}

void
CheckConfig::validate(ConfigErrors &errors) const
{
    if (enabled && watchdogCycles == 0)
        addError(errors, "check.watchdogCycles",
                 "must be nonzero when checking is enabled");
    if (enabled && commitWatchdogCycles == 0)
        addError(errors, "check.commitWatchdogCycles",
                 "must be nonzero when checking is enabled");
    if (enabled && starvationCycles == 0)
        addError(errors, "check.starvationCycles",
                 "must be nonzero when checking is enabled");
    if (fault != FaultKind::None && faultPeriod == 0)
        addError(errors, "check.faultPeriod",
                 "must be nonzero when a fault is injected");
}

ConfigErrors
SystemConfig::validate() const
{
    ConfigErrors errors;
    if (numCores == 0)
        addError(errors, "numCores", "must be nonzero");
    core.validate(errors);
    il1.validate("il1", errors);
    dl1.validate("dl1", errors);
    l2.validate("l2", errors);
    dram.validate(errors);
    check.validate(errors);
    if (core.freqMHz != 0 && dram.busMHz != 0 &&
        core.freqMHz < dram.busMHz)
        addError(errors, "core.freqMHz",
                 "CPU clock must be at least the DRAM bus clock");
    if (prefetch.enabled) {
        if (prefetch.streams == 0)
            addError(errors, "prefetch.streams", "must be nonzero");
        if (prefetch.distance == 0)
            addError(errors, "prefetch.distance", "must be nonzero");
        if (prefetch.degree == 0)
            addError(errors, "prefetch.degree", "must be nonzero");
    }
    if (crit.probShift >= 32)
        addError(errors, "crit.probShift", "must be below 32");
    if (crit.counterWidth > 64)
        addError(errors, "crit.counterWidth", "must be at most 64");
    if (sched.starvationCap == 0)
        addError(errors, "sched.starvationCap", "must be nonzero");
    if (sched.parbsMarkingCap == 0)
        addError(errors, "sched.parbsMarkingCap", "must be nonzero");
    if (sched.tcmQuantum == 0)
        addError(errors, "sched.tcmQuantum", "must be nonzero");
    if (sched.tcmClusterThresh <= 0.0 || sched.tcmClusterThresh >= 1.0)
        addError(errors, "sched.tcmClusterThresh",
                 "must lie strictly between 0 and 1");
    if (sched.morseMaxCommands == 0)
        addError(errors, "sched.morseMaxCommands", "must be nonzero");
    if (sched.blissThreshold == 0)
        addError(errors, "sched.blissThreshold", "must be nonzero");
    if (sched.blissClearInterval == 0)
        addError(errors, "sched.blissClearInterval", "must be nonzero");
    if (sched.batchCap == 0)
        addError(errors, "sched.batchCap", "must be nonzero");
    if (sched.dynThreshEpoch == 0)
        addError(errors, "sched.dynThreshEpoch", "must be nonzero");
    if (sched.dynThreshTargetPct == 0 || sched.dynThreshTargetPct > 100)
        addError(errors, "sched.dynThreshTargetPct",
                 "must lie in [1, 100]");
    if (check.fault == FaultKind::StarveCore &&
        check.faultVictim >= numCores)
        addError(errors, "check.faultVictim",
                 "victim core id must be below numCores");
    return errors;
}

void
validateOrFatal(const SystemConfig &cfg)
{
    const ConfigErrors errors = cfg.validate();
    if (errors.empty())
        return;
    std::string joined;
    for (const ConfigError &error : errors) {
        joined += "\n  ";
        joined += error.field;
        joined += ": ";
        joined += error.message;
    }
    fatal("invalid configuration (", errors.size(), " error",
          errors.size() == 1 ? "" : "s", "):", joined);
}

} // namespace critmem

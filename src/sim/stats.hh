/**
 * @file
 * Lightweight statistics framework.
 *
 * Components own a StatGroup; scalar counters, averages and log2
 * histograms register themselves with their group by name. Groups nest
 * to form a dotted hierarchy that can be dumped as text or queried
 * programmatically by the benches.
 */

#ifndef CRITMEM_SIM_STATS_HH
#define CRITMEM_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/log.hh"

namespace critmem::stats
{

class Group;

/** Write @p text as a quoted, escaped JSON string literal. */
void jsonEscape(std::ostream &os, const std::string &text);

/**
 * Write @p value so that it round-trips bit-exactly (printf %.17g),
 * with non-finite values emitted as null per RFC 8259.
 */
void jsonDouble(std::ostream &os, double value);

/** Base of all statistics; registers with a Group on construction. */
class StatBase
{
  public:
    StatBase(Group &parent, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Render one or more "name value # desc" lines. */
    virtual void print(std::ostream &os, const std::string &prefix)
        const = 0;

    /** Render this stat's value as a JSON value (no name key). */
    virtual void printJson(std::ostream &os) const = 0;

    /** Reset to the post-construction state. */
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** Monotonic 64-bit event counter. */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(std::uint64_t n) { value_ += n; return *this; }
    void set(std::uint64_t v) { value_ = v; }

    std::uint64_t value() const { return value_; }

    void print(std::ostream &os, const std::string &prefix)
        const override;
    void printJson(std::ostream &os) const override;
    void reset() override { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A point-in-time floating-point gauge (derived metrics such as
 * speedups and slowdowns, set once after a run rather than accumulated
 * per cycle). Emitted through jsonDouble, so the JSON round-trips
 * bit-exactly.
 */
class Value : public StatBase
{
  public:
    using StatBase::StatBase;

    void set(double v) { value_ = v; }
    double value() const { return value_; }

    void print(std::ostream &os, const std::string &prefix)
        const override;
    void printJson(std::ostream &os) const override;
    void reset() override { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** Running mean of sampled values (sum / count). */
class Average : public StatBase
{
  public:
    using StatBase::StatBase;

    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    /**
     * Record @p n identical samples of @p v in one step (used by the
     * cycle-skip fast path to replay per-cycle sampling in bulk).
     * Bit-identical to n sample(v) calls as long as v is an integer
     * and the running sum stays below 2^53, which every per-cycle
     * occupancy statistic in the simulator satisfies.
     */
    void
    sampleN(double v, std::uint64_t n)
    {
        sum_ += v * static_cast<double>(n);
        count_ += n;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    void print(std::ostream &os, const std::string &prefix)
        const override;
    void printJson(std::ostream &os) const override;
    void reset() override { sum_ = 0.0; count_ = 0; }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/** Power-of-two-bucketed histogram plus max tracking. */
class Histogram : public StatBase
{
  public:
    Histogram(Group &parent, std::string name, std::string desc);

    void sample(std::uint64_t v);

    std::uint64_t count() const { return count_; }
    std::uint64_t max() const { return max_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /** Bucket i counts samples in [2^(i-1), 2^i); bucket 0 counts 0. */
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

    void print(std::ostream &os, const std::string &prefix)
        const override;
    void printJson(std::ostream &os) const override;
    void reset() override;

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t max_ = 0;
    double sum_ = 0.0;
};

/** A named collection of statistics and child groups. */
class Group
{
  public:
    explicit Group(std::string name = "", Group *parent = nullptr);
    ~Group();

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    const std::string &name() const { return name_; }

    /** Dump this group and all descendants as text. */
    void print(std::ostream &os, const std::string &prefix = "") const;

    /**
     * Dump this group and all descendants as one JSON object: stats
     * keyed by name (in registration order), then child groups keyed
     * by their names. The machine-readable twin of print().
     */
    void printJson(std::ostream &os) const;

    /** Reset every stat in this group and all descendants. */
    void resetAll();

    /**
     * Look up a scalar counter by dotted path relative to this group
     * (e.g. "dram.rowHits"). Returns nullptr when absent.
     */
    const Scalar *findScalar(const std::string &path) const;
    const Value *findValue(const std::string &path) const;
    const Average *findAverage(const std::string &path) const;
    const Histogram *findHistogram(const std::string &path) const;

  private:
    friend class StatBase;

    const StatBase *find(const std::string &path) const;

    void addStat(StatBase *stat);
    void addChild(Group *child);
    void removeChild(Group *child);

    std::string name_;
    Group *parent_ = nullptr;
    std::vector<StatBase *> statsInOrder_;
    std::map<std::string, StatBase *> stats_;
    std::vector<Group *> children_;
};

/**
 * Write @p root's JSON tree (one line + trailing newline) to @p path
 * with old-or-new atomicity (AtomicFile: temp + fsync + rename). The
 * sink behind critmem-sim --stats-json FILE.
 */
void writeJsonFile(const std::string &path, const Group &root);

} // namespace critmem::stats

#endif // CRITMEM_SIM_STATS_HH

/**
 * @file
 * Crash-consistent file writing: AtomicFile stages output in a
 * sibling temp file and publishes it with fsync + rename, so a crash
 * at ANY point leaves either the old content or the complete new
 * content on disk — never a torn file. Every result/baseline writer
 * in the tree goes through this helper (enforced by the
 * `durable-write` lint rule, DESIGN.md section 9).
 */

#ifndef CRITMEM_SIM_ATOMIC_FILE_HH
#define CRITMEM_SIM_ATOMIC_FILE_HH

#include <fstream>
#include <string>

namespace critmem
{

/**
 * A file write with old-or-new atomicity.
 *
 * Usage: construct, write to stream(), then commit(). The data lands
 * in `path.tmp`; commit() flushes, fsyncs the temp file, renames it
 * over the target, and fsyncs the directory so the rename itself is
 * durable. Destruction without commit() (error paths, exceptions)
 * unlinks the temp file and leaves any previous target untouched.
 */
class AtomicFile
{
  public:
    /** Open `path.tmp` for writing; throws std::runtime_error. */
    explicit AtomicFile(std::string path);

    /** Discards the temp file when not committed. */
    ~AtomicFile();

    AtomicFile(const AtomicFile &) = delete;
    AtomicFile &operator=(const AtomicFile &) = delete;

    /** The staging stream; everything written lands in the temp. */
    std::ostream &stream() { return out_; }

    /** Final target path this file publishes to. */
    const std::string &path() const { return path_; }

    /**
     * Flush + fsync the temp file, rename it over path(), and fsync
     * the containing directory. Throws std::runtime_error on any
     * failure (the temp is discarded and the old target survives).
     */
    void commit();

    /** Drop the staged content without touching the target. */
    void discard();

    bool committed() const { return committed_; }

    /** One-shot convenience: stage @p content and commit. */
    static void writeAll(const std::string &path,
                         const std::string &content);

  private:
    std::string path_;
    std::string tmpPath_;
    std::ofstream out_;
    bool committed_ = false;
    bool discarded_ = false;
};

/**
 * fsync an already-written file by path (used by append-mode writers
 * that manage their own FILE handle, e.g. the campaign journal).
 * Throws std::runtime_error when the file cannot be synced.
 */
void fsyncPath(const std::string &path);

/** fsync the directory containing @p path (durability of renames). */
void fsyncParentDir(const std::string &path);

} // namespace critmem

#endif // CRITMEM_SIM_ATOMIC_FILE_HH

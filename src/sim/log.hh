/**
 * @file
 * Status/error reporting helpers in the gem5 spirit: panic() for
 * simulator bugs, fatal() for user/configuration errors, warn() and
 * inform() for advisory output.
 */

#ifndef CRITMEM_SIM_LOG_HH
#define CRITMEM_SIM_LOG_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string_view>

namespace critmem
{

namespace detail
{

void emit(std::string_view tag, const std::string &msg);

template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/**
 * Report an internal simulator bug and abort. Use only for conditions
 * that can never happen regardless of user input.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::emit("panic", detail::format(std::forward<Args>(args)...));
    // lint:allow(no-terminate): panic() is the process-fatal exit of
    // last resort for can-never-happen invariant breaks; abort() keeps
    // the core dump. Everything recoverable throws instead.
    std::abort();
}

/**
 * Report an unrecoverable user error (bad configuration, invalid
 * arguments) and exit with status 1.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::emit("fatal", detail::format(std::forward<Args>(args)...));
    // lint:allow(no-terminate): fatal() is the documented process
    // exit for unrecoverable *user* errors (bad CLI flags, malformed
    // specs) and is called from tools' argument handling before any
    // campaign state exists. Library failure paths throw.
    std::exit(1);
}

/** Warn about suspicious but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emit("warn", detail::format(std::forward<Args>(args)...));
}

/** Informational message; silenced when quiet mode is enabled. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emit("info", detail::format(std::forward<Args>(args)...));
}

/** Globally silence inform() (used by benches that print table rows). */
void setQuiet(bool quiet);

/** @return whether inform() output is currently suppressed. */
bool quiet();

} // namespace critmem

#endif // CRITMEM_SIM_LOG_HH

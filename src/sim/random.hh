/**
 * @file
 * Deterministic pseudo-random number generation for workload models.
 *
 * Every stochastic element of the simulator draws from an explicitly
 * seeded Rng so that a given (workload, configuration, seed) triple
 * always produces an identical cycle count. We use xoshiro256**, which
 * is fast, has a 256-bit state, and passes BigCrush.
 */

#ifndef CRITMEM_SIM_RANDOM_HH
#define CRITMEM_SIM_RANDOM_HH

#include <array>
#include <cstdint>

namespace critmem
{

/** Deterministic xoshiro256** generator with convenience draws. */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit value. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            // splitmix64 step
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // 128-bit multiply trick (Lemire); slight bias is irrelevant
        // for workload synthesis.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of true. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Bounded geometric-ish draw: number of failures before a success
     * with probability p, capped at max. Used for burst lengths and
     * dependence distances.
     */
    std::uint32_t
    geometric(double p, std::uint32_t max)
    {
        std::uint32_t n = 0;
        while (n < max && !chance(p))
            ++n;
        return n;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
};

} // namespace critmem

#endif // CRITMEM_SIM_RANDOM_HH

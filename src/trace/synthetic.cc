#include "trace/synthetic.hh"

#include <algorithm>

#include "sim/log.hh"

namespace critmem
{

const char *
toString(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu: return "IntAlu";
      case OpClass::IntMul: return "IntMul";
      case OpClass::FpAlu:  return "FpAlu";
      case OpClass::FpMul:  return "FpMul";
      case OpClass::Load:   return "Load";
      case OpClass::Store:  return "Store";
      case OpClass::Branch: return "Branch";
    }
    return "?";
}

namespace
{

/** Round a byte count up to a 4 KB boundary. */
Addr
pageAlign(Addr bytes)
{
    return (bytes + 4095) & ~Addr{4095};
}

} // namespace

SyntheticApp::SyntheticApp(const AppParams &params, CoreId tid,
                           std::uint32_t numThreads, Addr addrBase,
                           std::uint64_t seed)
    : params_(params), tid_(tid), numThreads_(numThreads),
      rng_(seed * 0x517cc1b727220a95ull + tid * 0x2545f4914f6cdd1dull + 1)
{
    const Addr privSpan = pageAlign(params.localBytes) +
        pageAlign(params.randBytes) + pageAlign(params.privateBytes);
    privateBase_ = pageAlign(addrBase) + tid * privSpan;
    sharedBase_ = pageAlign(addrBase) + numThreads * privSpan;
    // All threads build the identical static program (SPMD loops).
    buildProgram(seed);
}

void
SyntheticApp::buildProgram(std::uint64_t seed)
{
    Rng prng(seed * 0x9e3779b97f4a7c15ull + 0xabcd);
    const std::uint32_t length = std::max(params_.loopLength, 16u);
    program_.resize(length);

    // Per-thread region layout: [local][random][sequential/chase].
    const Addr localBase = privateBase_;
    const Addr randBase = localBase + pageAlign(params_.localBytes);
    const Addr farBase = randBase + pageAlign(params_.randBytes);

    // Stream pool. Pointer-chase chains get one stream each so that a
    // chain's serial dependence matches a single random walk.
    const std::uint32_t numLocal = 4;
    const std::uint32_t numSeq = 8;
    const std::uint32_t numRand = 4;
    auto makeStream = [&](StreamKind kind, bool shared) {
        Stream stream;
        stream.kind = kind;
        switch (kind) {
          case StreamKind::Local:
            stream.base = localBase;
            stream.size = params_.localBytes;
            break;
          case StreamKind::RandomPrivate:
            stream.base = randBase;
            stream.size = params_.randBytes;
            break;
          case StreamKind::RandomShared:
            stream.base = sharedBase_;
            stream.size = params_.sharedBytes;
            break;
          default:
            stream.base = shared ? sharedBase_ : farBase;
            stream.size =
                shared ? params_.sharedBytes : params_.privateBytes;
            break;
        }
        stream.size = std::max<std::uint64_t>(stream.size, 4096);
        stream.pos = prng.below(stream.size) & ~Addr{63};
        stream.stride = params_.strideBytes;
        if (kind == StreamKind::Sequential &&
            prng.chance(params_.bigStrideFrac)) {
            // Strides past a DRAM row: every access opens a new row.
            stream.stride = 2048 << prng.below(3);
        }
        streams_.push_back(stream);
        return static_cast<std::int32_t>(streams_.size() - 1);
    };

    std::vector<std::int32_t> localStreams;
    std::vector<std::int32_t> seqStreams;
    std::vector<std::int32_t> randStreams;
    for (std::uint32_t i = 0; i < numLocal; ++i)
        localStreams.push_back(makeStream(StreamKind::Local, false));
    for (std::uint32_t i = 0; i < numSeq; ++i) {
        seqStreams.push_back(makeStream(
            StreamKind::Sequential, prng.chance(params_.sharedFrac)));
    }
    for (std::uint32_t i = 0; i < numRand; ++i) {
        const bool shared = prng.chance(params_.sharedFrac);
        randStreams.push_back(makeStream(shared
                                             ? StreamKind::RandomShared
                                             : StreamKind::RandomPrivate,
                                         shared));
    }

    // Classify each static slot. Far accesses cluster at the head of
    // the loop body ("memory phase") with probability `burstiness`,
    // and fall uniformly otherwise.
    const double farFrac = 1.0 - params_.localFrac;
    const auto isLocalSlot = [&](std::uint32_t i) {
        if (prng.chance(params_.burstiness))
            return static_cast<double>(i) >= farFrac * length;
        return prng.chance(params_.localFrac);
    };

    std::vector<std::uint32_t> chaseOps;
    for (std::uint32_t i = 0; i < length; ++i) {
        StaticOp &op = program_[i];
        const double draw = prng.uniform();
        if (draw < params_.loadFrac) {
            op.cls = OpClass::Load;
            ++staticLoads_;
            if (isLocalSlot(i)) {
                op.stream =
                    localStreams[prng.below(localStreams.size())];
            } else {
                const double kind = prng.uniform();
                if (kind < params_.chaseFrac) {
                    chaseOps.push_back(i);
                } else if (kind < params_.chaseFrac + params_.seqFrac) {
                    op.stream =
                        seqStreams[prng.below(seqStreams.size())];
                } else {
                    op.stream =
                        randStreams[prng.below(randStreams.size())];
                }
            }
        } else if (draw < params_.loadFrac + params_.storeFrac) {
            op.cls = OpClass::Store;
            op.latency = 1;
            // Stores follow the same local/seq/random split, no chase.
            if (isLocalSlot(i)) {
                op.stream =
                    localStreams[prng.below(localStreams.size())];
            } else if (prng.chance(
                           params_.seqFrac /
                           (params_.seqFrac + params_.randomFrac))) {
                op.stream = seqStreams[prng.below(seqStreams.size())];
            } else {
                op.stream = randStreams[prng.below(randStreams.size())];
            }
        } else if (draw <
                   params_.loadFrac + params_.storeFrac +
                       params_.branchFrac) {
            op.cls = OpClass::Branch;
            op.latency = 1;
            op.mispredictRate = static_cast<float>(
                params_.mispredictRate * (0.2 + 1.6 * prng.uniform()));
        } else if (prng.chance(params_.fpFrac)) {
            const bool mul = prng.chance(0.25);
            op.cls = mul ? OpClass::FpMul : OpClass::FpAlu;
            op.latency = mul ? 5 : 3;
        } else {
            const bool mul = prng.chance(0.1);
            op.cls = mul ? OpClass::IntMul : OpClass::IntAlu;
            op.latency = mul ? 3 : 1;
        }
    }

    // Pointer-chase chains: round-robin the chase loads over a small
    // number of chains; each load depends on the previous load of its
    // chain, which serializes the chain through the ROB.
    if (!chaseOps.empty()) {
        const std::uint32_t numChains = std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(chaseOps.size() / 24));
        std::vector<std::int32_t> chainStream(numChains);
        for (std::uint32_t c = 0; c < numChains; ++c)
            chainStream[c] = makeStream(StreamKind::PointerChase, false);
        std::vector<std::int32_t> lastInChain(numChains, -1);
        for (std::size_t k = 0; k < chaseOps.size(); ++k) {
            const std::uint32_t chain =
                static_cast<std::uint32_t>(k % numChains);
            const std::uint32_t idx = chaseOps[k];
            program_[idx].stream = chainStream[chain];
            if (lastInChain[chain] >= 0) {
                const std::uint32_t dist =
                    idx - static_cast<std::uint32_t>(lastInChain[chain]);
                program_[idx].dep1 = static_cast<std::uint16_t>(
                    std::min<std::uint32_t>(dist, 0xffff));
            }
            lastInChain[chain] = static_cast<std::int32_t>(idx);
        }
        // Close each chain across the loop back-edge.
        for (std::uint32_t c = 0; c < numChains; ++c) {
            if (lastInChain[c] < 0)
                continue;
            const std::uint32_t first = [&] {
                for (std::size_t k = 0; k < chaseOps.size(); ++k) {
                    if (k % numChains == c)
                        return chaseOps[k];
                }
                return chaseOps[0];
            }();
            const std::uint32_t dist = first + length -
                static_cast<std::uint32_t>(lastInChain[c]);
            program_[first].dep1 = static_cast<std::uint16_t>(
                std::min<std::uint32_t>(dist, 0xffff));
        }
    }

    // Generic short dependences for everything else.
    for (std::uint32_t i = 0; i < length; ++i) {
        StaticOp &op = program_[i];
        const bool isChaseLoad =
            op.cls == OpClass::Load && op.dep1 != 0;
        if (!isChaseLoad && prng.chance(0.8)) {
            op.dep1 = static_cast<std::uint16_t>(
                1 + prng.geometric(0.25, 30));
        }
        if (prng.chance(0.3)) {
            op.dep2 = static_cast<std::uint16_t>(
                1 + prng.geometric(0.25, 30));
        }
    }

    // High-fanout loads: a subset of non-chase loads feeds several
    // nearby ALU ops. These are the loads CLPT marks critical — and
    // they are mostly cache-resident address computations, which is
    // why consumer count correlates poorly with ROB blocking
    // (Section 5.3.3).
    for (std::uint32_t i = 0; i < length; ++i) {
        StaticOp &op = program_[i];
        if (op.cls != OpClass::Load || op.stream < 0)
            continue;
        if (streams_[op.stream].kind == StreamKind::PointerChase)
            continue;
        if (!prng.chance(params_.fanoutLoadFrac))
            continue;
        std::uint32_t consumers = 0;
        for (std::uint32_t d = 1; d <= 6 && consumers < 4; ++d) {
            StaticOp &target = program_[(i + d) % length];
            if (target.cls == OpClass::IntAlu ||
                target.cls == OpClass::FpAlu) {
                target.dep1 = static_cast<std::uint16_t>(d);
                ++consumers;
            }
        }
    }
}

std::vector<std::pair<Addr, std::uint64_t>>
SyntheticApp::farRegions() const
{
    std::vector<std::pair<Addr, std::uint64_t>> regions;
    for (const Stream &stream : streams_) {
        if (stream.kind != StreamKind::Local)
            regions.emplace_back(stream.base, stream.size);
    }
    return regions;
}

Addr
SyntheticApp::genAddress(Stream &stream)
{
    switch (stream.kind) {
      case StreamKind::Local: {
        // Hot, cache-resident scratch data (stack, loop temporaries).
        stream.pos = rng_.below(stream.size) & ~std::uint64_t{7};
        return stream.base + stream.pos;
      }
      case StreamKind::Sequential: {
        const Addr addr = stream.base + stream.pos;
        stream.pos = (stream.pos + stream.stride) % stream.size;
        return addr;
      }
      case StreamKind::RandomPrivate:
      case StreamKind::RandomShared: {
        if (rng_.chance(params_.rowLocality)) {
            // Stay within the current 1 KB row.
            stream.pos = (stream.pos & ~std::uint64_t{1023}) +
                (rng_.below(1024) & ~std::uint64_t{7});
        } else {
            stream.pos = rng_.below(stream.size) & ~std::uint64_t{7};
        }
        return stream.base + stream.pos;
      }
      case StreamKind::PointerChase: {
        // Each dereference lands on an unpredictable node, but heap
        // allocators cluster consecutive nodes into pages, so chains
        // exhibit partial row locality.
        if (rng_.chance(params_.rowLocality)) {
            stream.pos = (stream.pos & ~std::uint64_t{1023}) +
                (rng_.below(1024) & ~std::uint64_t{7});
        } else {
            stream.pos = rng_.below(stream.size) & ~std::uint64_t{7};
        }
        return stream.base + stream.pos;
      }
    }
    return stream.base;
}

void
SyntheticApp::next(MicroOp &op)
{
    const StaticOp &s = program_[loopPos_];
    op.cls = s.cls;
    op.pc = pcBase_ + loopPos_ * 4;
    op.latency = s.latency;
    op.dep1 = s.dep1;
    op.dep2 = s.dep2;
    op.mispredict = s.cls == OpClass::Branch &&
        rng_.chance(s.mispredictRate);
    op.addr = s.stream >= 0 ? genAddress(streams_[s.stream]) : 0;
    loopPos_ = (loopPos_ + 1) % static_cast<std::uint32_t>(
        program_.size());
}

} // namespace critmem

/**
 * @file
 * The dynamic micro-operation format produced by workload generators
 * and consumed by the out-of-order core model.
 */

#ifndef CRITMEM_TRACE_MICROOP_HH
#define CRITMEM_TRACE_MICROOP_HH

#include <cstdint>

#include "sim/types.hh"

namespace critmem
{

/** Functional-unit classes (Table 1's FU mix). */
enum class OpClass : std::uint8_t
{
    IntAlu,
    IntMul,
    FpAlu,
    FpMul,
    Load,
    Store,
    Branch,
};

/** @return printable name of an op class. */
const char *toString(OpClass cls);

/**
 * One dynamic micro-op.
 *
 * Register dependences are encoded as backward distances in program
 * order: a nonzero depN means "source N is produced by the micro-op
 * issued depN instructions earlier". The core resolves distances
 * against its ROB; producers that already committed count as ready.
 */
struct MicroOp
{
    OpClass cls = OpClass::IntAlu;
    /** Synthetic program counter (used by CBP/CLPT indexing). */
    std::uint64_t pc = 0;
    /** Effective address; meaningful for Load/Store only. */
    Addr addr = 0;
    /** Execution latency for non-memory ops, cycles. */
    std::uint8_t latency = 1;
    /** Backward dependence distances; 0 = no dependence. */
    std::uint16_t dep1 = 0;
    std::uint16_t dep2 = 0;
    /** Branch only: this dynamic instance is mispredicted. */
    bool mispredict = false;
};

} // namespace critmem

#endif // CRITMEM_TRACE_MICROOP_HH

/**
 * @file
 * Statistical workload models standing in for the paper's benchmark
 * binaries (Tables 2 and 4).
 *
 * Each application is a static loop "program" — generated once from
 * the AppParams — whose memory operations are bound to address
 * streams (sequential, random-private, random-shared, pointer-chase).
 * Dynamic execution walks the loop, so static PCs recur exactly as in
 * real loops; that recurrence is what PC-indexed predictors (CBP,
 * CLPT) exploit. Pointer-chase loads form serial dependence chains
 * over large footprints, reproducing the ROB-head-blocking loads that
 * Runahead/CLEAR (and this paper) target; streaming loads enjoy MLP
 * and rarely block.
 */

#ifndef CRITMEM_TRACE_SYNTHETIC_HH
#define CRITMEM_TRACE_SYNTHETIC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.hh"
#include "sim/types.hh"
#include "trace/generator.hh"

namespace critmem
{

/** Statistical description of one application. */
struct AppParams
{
    std::string name;

    // Instruction mix (fractions of all micro-ops).
    double loadFrac = 0.28;
    double storeFrac = 0.12;
    double branchFrac = 0.12;
    double fpFrac = 0.20;      ///< of non-memory compute ops

    // Control flow.
    double mispredictRate = 0.005; ///< average, across branches
    std::uint32_t loopLength = 512; ///< static micro-ops in the loop

    // Memory behavior. Most accesses are "local" (a small, cache-
    // resident region); the rest are "far" accesses that split across
    // sequential, random, and pointer-chase streams over working sets
    // that overflow the caches.
    double localFrac = 0.75;   ///< of memory ops: cache-resident
    /**
     * Fraction of far accesses clustered into the head of the loop
     * body (the "memory phase"), mimicking the burstiness of real
     * applications: each iteration alternates a miss storm with a
     * compute stretch, which is what intermittently fills the DRAM
     * transaction queues.
     */
    double burstiness = 0.85;
    double seqFrac = 0.45;     ///< of far ops: sequential/strided
    double randomFrac = 0.35;  ///< of far ops: random in randBytes
    double chaseFrac = 0.20;   ///< of far ops: serial pointer chasing
    double sharedFrac = 0.20;  ///< far streams in the shared region

    std::uint64_t localBytes = 16ull << 10; ///< near region per thread
    std::uint64_t randBytes = 3ull << 20;   ///< random-stream region
    std::uint64_t privateBytes = 16ull << 20; ///< seq/chase region
    std::uint64_t sharedBytes = 8ull << 20;  ///< shared working set
    std::uint32_t strideBytes = 8;           ///< base sequential stride
    double bigStrideFrac = 0.0; ///< streams striding past a DRAM row
    double rowLocality = 0.5;   ///< random stream stays in its page

    /** Fraction of loads with >= 3 direct consumers (CLPT fodder). */
    double fanoutLoadFrac = 0.10;
};

/** The statistical application generator. */
class SyntheticApp : public TraceGenerator
{
  public:
    /**
     * @param params Application description.
     * @param tid Thread id within the application.
     * @param numThreads Threads the application runs with.
     * @param addrBase Base of this application's address space (keeps
     *        multiprogrammed bundles disjoint).
     * @param seed Per-run seed; the static program depends only on
     *        (params, seed), the dynamic stream also on tid.
     */
    SyntheticApp(const AppParams &params, CoreId tid,
                 std::uint32_t numThreads, Addr addrBase,
                 std::uint64_t seed);

    void next(MicroOp &op) override;

    const std::string &name() const override { return params_.name; }

    /** Static loads in the loop (the CBP's learning target count). */
    std::uint32_t staticLoads() const { return staticLoads_; }

    /**
     * The far (cache-overflowing) regions this thread touches, as
     * (base, size) pairs — used to prewarm the shared cache with
     * plausibly-resident lines before measurement.
     */
    std::vector<std::pair<Addr, std::uint64_t>>
    farRegions() const override;

  private:
    enum class StreamKind : std::uint8_t
    {
        Local,
        Sequential,
        RandomPrivate,
        RandomShared,
        PointerChase,
    };

    struct Stream
    {
        StreamKind kind = StreamKind::Sequential;
        Addr base = 0;
        std::uint64_t size = 0;
        std::uint64_t pos = 0;
        std::uint64_t stride = 64;
    };

    struct StaticOp
    {
        OpClass cls = OpClass::IntAlu;
        std::uint8_t latency = 1;
        std::uint16_t dep1 = 0;
        std::uint16_t dep2 = 0;
        std::int32_t stream = -1;
        float mispredictRate = 0.0f;
    };

    void buildProgram(std::uint64_t seed);
    Addr genAddress(Stream &stream);

    AppParams params_;
    CoreId tid_;
    std::uint32_t numThreads_;
    Addr privateBase_;
    Addr sharedBase_;
    Rng rng_;
    std::vector<StaticOp> program_;
    std::vector<Stream> streams_;
    std::uint32_t loopPos_ = 0;
    std::uint32_t staticLoads_ = 0;
    std::uint64_t pcBase_ = 0x400000;
};

} // namespace critmem

#endif // CRITMEM_TRACE_SYNTHETIC_HH

#include "trace/trace_file.hh"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <limits>

#include "sim/atomic_file.hh"
#include "sim/types.hh"

namespace critmem
{

namespace
{

constexpr std::size_t kRecordBytes = 24;

void
encode(const MicroOp &op, std::uint8_t *out)
{
    std::uint64_t pc = op.pc;
    std::uint64_t addr = op.addr;
    std::memcpy(out, &pc, 8);
    std::memcpy(out + 8, &addr, 8);
    out[16] = static_cast<std::uint8_t>(op.cls);
    out[17] = op.latency;
    const std::uint16_t dep1 = op.dep1;
    const std::uint16_t dep2 = op.dep2;
    std::memcpy(out + 18, &dep1, 2);
    std::memcpy(out + 20, &dep2, 2);
    out[22] = op.mispredict ? 1 : 0;
    out[23] = 0;
}

void
decode(const std::uint8_t *in, MicroOp &op)
{
    std::memcpy(&op.pc, in, 8);
    std::memcpy(&op.addr, in + 8, 8);
    op.cls = static_cast<OpClass>(in[16]);
    op.latency = in[17];
    std::memcpy(&op.dep1, in + 18, 2);
    std::memcpy(&op.dep2, in + 20, 2);
    op.mispredict = in[22] != 0;
}

constexpr std::size_t kHeaderBytes = 16;

} // namespace

TraceError::TraceError(const std::string &message,
                       std::uint64_t byteOffset)
    : std::runtime_error(message + " (byte offset " +
                         std::to_string(byteOffset) + ")"),
      byteOffset_(byteOffset)
{
}

TraceWriter::TraceWriter(const std::string &path)
{
    try {
        file_ = std::make_unique<AtomicFile>(path);
    } catch (const std::runtime_error &e) {
        throw TraceError("cannot stage trace file '" + path +
                             "' for writing: " + e.what(),
                         0);
    }
    // Header: magic, version, reserved count slot (fixed on close).
    const std::uint32_t magic = kMagic;
    const std::uint32_t version = kVersion;
    const std::uint64_t count = 0;
    std::ostream &os = file_->stream();
    os.write(reinterpret_cast<const char *>(&magic), 4);
    os.write(reinterpret_cast<const char *>(&version), 4);
    os.write(reinterpret_cast<const char *>(&count), 8);
    if (!os) {
        throw TraceError("cannot write trace header to '" + path +
                             "'",
                         0);
    }
}

TraceWriter::~TraceWriter()
{
    try {
        close();
    } catch (...) {
        // Destructors must not throw; AtomicFile discards the
        // uncommitted temp and any previous trace survives.
    }
}

void
TraceWriter::append(const MicroOp &op)
{
    std::array<std::uint8_t, kRecordBytes> record{};
    encode(op, record.data());
    std::ostream &os = file_->stream();
    os.write(reinterpret_cast<const char *>(record.data()),
             record.size());
    if (!os) {
        throw TraceError("short write to trace '" + file_->path() +
                             "'",
                         kHeaderBytes + count_ * kRecordBytes);
    }
    ++count_;
}

void
TraceWriter::close()
{
    if (!file_)
        return;
    // Hand ownership to a local so a throw below discards the temp
    // instead of retrying on destruction.
    std::unique_ptr<AtomicFile> file = std::move(file_);
    std::ostream &os = file->stream();
    // Patch the record count into the reserved header slot.
    os.seekp(8, std::ios::beg);
    const std::uint64_t count = count_;
    os.write(reinterpret_cast<const char *>(&count), 8);
    if (!os) {
        throw TraceError("cannot finalize the header of trace '" +
                             file->path() + "'",
                         8);
    }
    try {
        file->commit();
    } catch (const std::runtime_error &e) {
        throw TraceError("cannot publish trace '" + file->path() +
                             "': " + e.what(),
                         0);
    }
}

TraceReader::TraceReader(const std::string &path) : name_(path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        throw TraceError("cannot open trace file '" + path + "'", 0);
    // RAII so every throw below closes the handle.
    struct Closer
    {
        std::FILE *f;
        ~Closer() { std::fclose(f); }
    } closer{file};

    // Validate against the real file size before trusting any header
    // field, so a corrupt count cannot drive a huge allocation.
    if (std::fseek(file, 0, SEEK_END) != 0)
        throw TraceError("cannot seek in trace '" + path + "'", 0);
    const long fileSize = std::ftell(file);
    std::rewind(file);
    if (fileSize < 0 ||
        static_cast<std::uint64_t>(fileSize) < kHeaderBytes) {
        throw TraceError("trace '" + path + "' is shorter than the " +
                             std::to_string(kHeaderBytes) +
                             "-byte header",
                         static_cast<std::uint64_t>(
                             fileSize < 0 ? 0 : fileSize));
    }

    std::uint32_t magic = 0, version = 0;
    std::uint64_t count = 0;
    if (std::fread(&magic, 4, 1, file) != 1 ||
        std::fread(&version, 4, 1, file) != 1 ||
        std::fread(&count, 8, 1, file) != 1)
        throw TraceError("trace '" + path + "' header unreadable", 0);
    if (magic != TraceWriter::kMagic) {
        throw TraceError("'" + path +
                             "' is not a critmem trace (bad magic)",
                         0);
    }
    if (version != TraceWriter::kVersion) {
        throw TraceError("trace '" + path + "' has unsupported version " +
                             std::to_string(version),
                         4);
    }
    if (count == 0)
        throw TraceError("trace '" + path + "' is empty", 8);

    const std::uint64_t body =
        static_cast<std::uint64_t>(fileSize) - kHeaderBytes;
    if (count > body / kRecordBytes) {
        throw TraceError("trace '" + path + "' declares " +
                             std::to_string(count) + " records but only " +
                             std::to_string(body / kRecordBytes) +
                             " fit in the file",
                         8);
    }
    if (body != count * kRecordBytes) {
        throw TraceError("trace '" + path + "' has " +
                             std::to_string(body - count * kRecordBytes) +
                             " trailing bytes after the last record",
                         kHeaderBytes + count * kRecordBytes);
    }

    ops_.resize(count);
    std::array<std::uint8_t, kRecordBytes> record{};
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t offset = kHeaderBytes + i * kRecordBytes;
        if (std::fread(record.data(), record.size(), 1, file) != 1) {
            throw TraceError("trace '" + path +
                                 "' ends early at record " +
                                 std::to_string(i),
                             offset);
        }
        if (record[16] > static_cast<std::uint8_t>(OpClass::Branch)) {
            throw TraceError("trace '" + path + "' record " +
                                 std::to_string(i) +
                                 " has invalid op class " +
                                 std::to_string(record[16]),
                             offset + 16);
        }
        decode(record.data(), ops_[i]);
    }
}

void
TraceReader::next(MicroOp &op)
{
    op = ops_[pos_];
    pos_ = (pos_ + 1) % ops_.size();
}

std::vector<std::pair<Addr, std::uint64_t>>
TraceReader::farRegions() const
{
    Addr lo = kNoAddr;
    Addr hi = 0;
    for (const MicroOp &op : ops_) {
        if (op.cls != OpClass::Load && op.cls != OpClass::Store)
            continue;
        lo = std::min(lo, op.addr);
        hi = std::max(hi, op.addr);
    }
    if (lo == kNoAddr)
        return {};
    const std::uint64_t span = hi - lo;
    const std::uint64_t most =
        std::numeric_limits<std::uint64_t>::max() - 64;
    return {{lo, span > most ? span : span + 64}};
}

} // namespace critmem

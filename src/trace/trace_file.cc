#include "trace_file.hh"

#include <array>
#include <cstring>

#include "sim/log.hh"

namespace critmem
{

namespace
{

constexpr std::size_t kRecordBytes = 24;

void
encode(const MicroOp &op, std::uint8_t *out)
{
    std::uint64_t pc = op.pc;
    std::uint64_t addr = op.addr;
    std::memcpy(out, &pc, 8);
    std::memcpy(out + 8, &addr, 8);
    out[16] = static_cast<std::uint8_t>(op.cls);
    out[17] = op.latency;
    const std::uint16_t dep1 = op.dep1;
    const std::uint16_t dep2 = op.dep2;
    std::memcpy(out + 18, &dep1, 2);
    std::memcpy(out + 20, &dep2, 2);
    out[22] = op.mispredict ? 1 : 0;
    out[23] = 0;
}

void
decode(const std::uint8_t *in, MicroOp &op)
{
    std::memcpy(&op.pc, in, 8);
    std::memcpy(&op.addr, in + 8, 8);
    op.cls = static_cast<OpClass>(in[16]);
    op.latency = in[17];
    std::memcpy(&op.dep1, in + 18, 2);
    std::memcpy(&op.dep2, in + 20, 2);
    op.mispredict = in[22] != 0;
}

} // namespace

TraceWriter::TraceWriter(const std::string &path)
    : file_(std::fopen(path.c_str(), "wb"))
{
    if (!file_)
        fatal("cannot open trace file '", path, "' for writing");
    // Header: magic, version, reserved count slot (fixed on close).
    const std::uint32_t magic = kMagic;
    const std::uint32_t version = kVersion;
    const std::uint64_t count = 0;
    std::fwrite(&magic, 4, 1, file_);
    std::fwrite(&version, 4, 1, file_);
    std::fwrite(&count, 8, 1, file_);
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const MicroOp &op)
{
    std::array<std::uint8_t, kRecordBytes> record{};
    encode(op, record.data());
    if (std::fwrite(record.data(), record.size(), 1, file_) != 1)
        fatal("short write to trace file");
    ++count_;
}

void
TraceWriter::close()
{
    if (!file_)
        return;
    std::fseek(file_, 8, SEEK_SET);
    std::fwrite(&count_, 8, 1, file_);
    std::fclose(file_);
    file_ = nullptr;
}

TraceReader::TraceReader(const std::string &path) : name_(path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        fatal("cannot open trace file '", path, "'");
    std::uint32_t magic = 0, version = 0;
    std::uint64_t count = 0;
    if (std::fread(&magic, 4, 1, file) != 1 ||
        std::fread(&version, 4, 1, file) != 1 ||
        std::fread(&count, 8, 1, file) != 1) {
        std::fclose(file);
        fatal("trace file '", path, "' is truncated");
    }
    if (magic != TraceWriter::kMagic)
        fatal("'", path, "' is not a critmem trace (bad magic)");
    if (version != TraceWriter::kVersion)
        fatal("trace '", path, "' has unsupported version ", version);
    if (count == 0)
        fatal("trace '", path, "' is empty");

    ops_.resize(count);
    std::array<std::uint8_t, kRecordBytes> record{};
    for (std::uint64_t i = 0; i < count; ++i) {
        if (std::fread(record.data(), record.size(), 1, file) != 1) {
            std::fclose(file);
            fatal("trace '", path, "' ends early at record ", i);
        }
        decode(record.data(), ops_[i]);
    }
    std::fclose(file);
}

void
TraceReader::next(MicroOp &op)
{
    op = ops_[pos_];
    pos_ = (pos_ + 1) % ops_.size();
}

} // namespace critmem

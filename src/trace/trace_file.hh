/**
 * @file
 * Binary micro-op trace record/replay.
 *
 * Records any TraceGenerator's output to a compact binary file and
 * replays it later, enabling (a) exact cross-machine reproduction of
 * a workload independent of the statistical generators, and (b)
 * feeding externally produced traces (e.g. converted SPEC traces)
 * into the simulator. The format is a fixed 24-byte little-endian
 * record per micro-op behind a small header.
 */

#ifndef CRITMEM_TRACE_TRACE_FILE_HH
#define CRITMEM_TRACE_TRACE_FILE_HH

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/generator.hh"

namespace critmem
{

class AtomicFile;

/**
 * A malformed or unreadable trace file. Carries the byte offset of
 * the offending field so tooling can point at the corruption.
 */
class TraceError : public std::runtime_error
{
  public:
    TraceError(const std::string &message, std::uint64_t byteOffset);

    /** Offset into the file of the field that failed validation. */
    std::uint64_t byteOffset() const { return byteOffset_; }

  private:
    std::uint64_t byteOffset_;
};

/**
 * Writes micro-ops to a trace file. Output is staged through
 * AtomicFile, so a crash or error leaves either the previous trace or
 * the complete new one on disk — never a torn file.
 */
class TraceWriter
{
  public:
    /** Stage @p path for writing; throws TraceError on failure. */
    explicit TraceWriter(const std::string &path);

    /** Finalizes via close(), swallowing errors (no-throw). */
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one micro-op; throws TraceError on a failed write. */
    void append(const MicroOp &op);

    /**
     * Finalize the header and atomically publish the file; called by
     * the destructor too. Throws TraceError on failure (the staged
     * temp is discarded and any previous trace survives).
     */
    void close();

    std::uint64_t written() const { return count_; }

    static constexpr std::uint32_t kMagic = 0x43544d54; // "CTMT"
    static constexpr std::uint32_t kVersion = 1;

  private:
    std::unique_ptr<AtomicFile> file_;
    std::uint64_t count_ = 0;
};

/**
 * Replays a trace file as a TraceGenerator. The trace is loaded into
 * memory; replay loops back to the first record at the end (matching
 * the loop semantics of the synthetic generators).
 */
class TraceReader : public TraceGenerator
{
  public:
    /**
     * Load @p path entirely. Every field of the header and each
     * record is validated; throws TraceError (with the byte offset of
     * the problem) on unopenable, truncated, oversized or otherwise
     * malformed input.
     */
    explicit TraceReader(const std::string &path);

    void next(MicroOp &op) override;

    const std::string &name() const override { return name_; }

    /** The span of Load/Store addresses in the trace (for prewarm). */
    std::vector<std::pair<Addr, std::uint64_t>>
    farRegions() const override;

    std::uint64_t size() const { return ops_.size(); }

  private:
    std::vector<MicroOp> ops_;
    std::size_t pos_ = 0;
    std::string name_;
};

/** Pass-through generator that records everything it produces. */
class RecordingGenerator : public TraceGenerator
{
  public:
    RecordingGenerator(TraceGenerator &inner, TraceWriter &writer)
        : inner_(inner), writer_(writer)
    {
    }

    void
    next(MicroOp &op) override
    {
        inner_.next(op);
        writer_.append(op);
    }

    const std::string &name() const override { return inner_.name(); }

    std::vector<std::pair<Addr, std::uint64_t>>
    farRegions() const override
    {
        return inner_.farRegions();
    }

  private:
    TraceGenerator &inner_;
    TraceWriter &writer_;
};

} // namespace critmem

#endif // CRITMEM_TRACE_TRACE_FILE_HH

#include "trace/workloads.hh"

#include "sim/log.hh"

namespace critmem
{

namespace
{

/**
 * Parallel application models (Table 2). Parameters encode each
 * program's published memory character: `art` is dominated by
 * two-level pointer chasing over the largest footprint of the suite
 * (Section 5.3.1); `swim`/`mg` are stencil/stream codes; `fft` mixes
 * unit-stride with row-crossing butterfly strides; `radix` scatters
 * stores; `ocean` has an unusually large static load population.
 */
std::vector<AppParams>
buildParallel()
{
    std::vector<AppParams> apps;

    AppParams art;
    art.name = "art";
    art.loadFrac = 0.30;
    art.storeFrac = 0.08;
    art.loopLength = 2048;
    art.localFrac = 0.80;
    art.seqFrac = 0.20;
    art.randomFrac = 0.40;
    art.chaseFrac = 0.40;
    art.sharedFrac = 0.10;
    art.privateBytes = 24ull << 20;
    art.randBytes = 4ull << 20;
    art.sharedBytes = 8ull << 20;
    art.rowLocality = 0.40;
    art.mispredictRate = 0.004;
    art.fanoutLoadFrac = 0.05;
    apps.push_back(art);

    AppParams cg;
    cg.name = "cg";
    cg.loopLength = 384;
    cg.localFrac = 0.87;
    cg.seqFrac = 0.40;
    cg.randomFrac = 0.45;
    cg.chaseFrac = 0.15;
    cg.sharedFrac = 0.25;
    cg.privateBytes = 8ull << 20;
    cg.rowLocality = 0.45;
    apps.push_back(cg);

    AppParams equake;
    equake.name = "equake";
    equake.loopLength = 448;
    equake.localFrac = 0.87;
    equake.seqFrac = 0.45;
    equake.randomFrac = 0.35;
    equake.chaseFrac = 0.20;
    equake.sharedFrac = 0.20;
    equake.privateBytes = 10ull << 20;
    apps.push_back(equake);

    AppParams fft;
    fft.name = "fft";
    fft.loopLength = 320;
    fft.localFrac = 0.86;
    fft.seqFrac = 0.60;
    fft.randomFrac = 0.28;
    fft.chaseFrac = 0.12;
    fft.sharedFrac = 0.30;
    fft.privateBytes = 12ull << 20;
    fft.bigStrideFrac = 0.50;
    apps.push_back(fft);

    AppParams mg;
    mg.name = "mg";
    mg.loopLength = 352;
    mg.localFrac = 0.89;
    mg.seqFrac = 0.70;
    mg.randomFrac = 0.25;
    mg.chaseFrac = 0.05;
    mg.sharedFrac = 0.30;
    mg.privateBytes = 12ull << 20;
    apps.push_back(mg);

    AppParams ocean;
    ocean.name = "ocean";
    ocean.loopLength = 6144;
    ocean.localFrac = 0.85;
    ocean.seqFrac = 0.45;
    ocean.randomFrac = 0.37;
    ocean.chaseFrac = 0.18;
    ocean.sharedFrac = 0.35;
    ocean.privateBytes = 16ull << 20;
    ocean.sharedBytes = 16ull << 20;
    apps.push_back(ocean);

    AppParams radix;
    radix.name = "radix";
    radix.loopLength = 256;
    radix.loadFrac = 0.26;
    radix.storeFrac = 0.18;
    radix.localFrac = 0.85;
    radix.seqFrac = 0.35;
    radix.randomFrac = 0.55;
    radix.chaseFrac = 0.10;
    radix.sharedFrac = 0.30;
    radix.privateBytes = 8ull << 20;
    radix.randBytes = 4ull << 20;
    radix.rowLocality = 0.35;
    apps.push_back(radix);

    AppParams scalparc;
    scalparc.name = "scalparc";
    scalparc.loopLength = 768;
    scalparc.localFrac = 0.86;
    scalparc.seqFrac = 0.30;
    scalparc.randomFrac = 0.45;
    scalparc.chaseFrac = 0.25;
    scalparc.sharedFrac = 0.30;
    scalparc.privateBytes = 12ull << 20;
    apps.push_back(scalparc);

    AppParams swim;
    swim.name = "swim";
    swim.loopLength = 320;
    swim.localFrac = 0.89;
    swim.seqFrac = 0.82;
    swim.randomFrac = 0.13;
    swim.chaseFrac = 0.05;
    swim.sharedFrac = 0.20;
    swim.privateBytes = 16ull << 20;
    apps.push_back(swim);

    return apps;
}

/**
 * Single-threaded models for the multiprogrammed bundles (Table 4).
 * P = processor-bound (tiny footprint), C = cache-sensitive (fits the
 * L2 only when lucky), M = memory-sensitive (big or streaming
 * footprint), following the paper's classification.
 */
std::vector<AppParams>
buildSingles()
{
    auto cpuBound = [](const std::string &name) {
        AppParams p;
        p.name = name;
        p.loadFrac = 0.20;
        p.storeFrac = 0.08;
        p.localFrac = 0.95;
        p.chaseFrac = 0.0;
        p.seqFrac = 0.60;
        p.randomFrac = 0.40;
        p.sharedFrac = 0.0;
        p.sharedBytes = 0;
        p.randBytes = 128ull << 10;
        p.privateBytes = 256ull << 10;
        p.rowLocality = 0.7;
        return p;
    };
    auto cacheSens = [](const std::string &name) {
        AppParams p;
        p.name = name;
        p.loadFrac = 0.26;
        p.storeFrac = 0.10;
        p.localFrac = 0.82;
        p.chaseFrac = 0.15;
        p.seqFrac = 0.40;
        p.randomFrac = 0.45;
        p.sharedFrac = 0.0;
        p.sharedBytes = 0;
        p.randBytes = 2500ull << 10;
        p.privateBytes = 3ull << 20;
        p.rowLocality = 0.5;
        return p;
    };
    auto memSens = [](const std::string &name) {
        AppParams p;
        p.name = name;
        p.loadFrac = 0.30;
        p.storeFrac = 0.12;
        p.localFrac = 0.65;
        p.chaseFrac = 0.20;
        p.seqFrac = 0.45;
        p.randomFrac = 0.35;
        p.sharedFrac = 0.0;
        p.sharedBytes = 0;
        p.randBytes = 6ull << 20;
        p.privateBytes = 16ull << 20;
        p.rowLocality = 0.4;
        return p;
    };

    std::vector<AppParams> apps;
    apps.push_back(cacheSens("ammp"));
    apps.push_back(cpuBound("ep"));
    apps.push_back(cacheSens("lu"));
    apps.push_back(cacheSens("vpr"));
    apps.push_back(cpuBound("crafty"));
    apps.push_back(cpuBound("mesa"));

    AppParams is = memSens("is");
    is.seqFrac = 0.25;
    is.randomFrac = 0.70;
    is.chaseFrac = 0.05;
    apps.push_back(is);

    AppParams mgSt = memSens("mg_st");
    mgSt.seqFrac = 0.75;
    mgSt.randomFrac = 0.20;
    mgSt.chaseFrac = 0.05;
    apps.push_back(mgSt);

    apps.push_back(cacheSens("mgrid"));
    apps.push_back(cacheSens("parser"));

    AppParams sp = memSens("sp");
    sp.seqFrac = 0.70;
    sp.randomFrac = 0.25;
    sp.chaseFrac = 0.05;
    apps.push_back(sp);

    AppParams artSt = cacheSens("art_st");
    artSt.chaseFrac = 0.30;
    artSt.randomFrac = 0.35;
    artSt.seqFrac = 0.35;
    artSt.privateBytes = 4ull << 20;
    apps.push_back(artSt);

    AppParams mcf = memSens("mcf");
    mcf.chaseFrac = 0.50;
    mcf.randomFrac = 0.30;
    mcf.seqFrac = 0.20;
    mcf.privateBytes = 24ull << 20;
    mcf.rowLocality = 0.25;
    apps.push_back(mcf);

    AppParams twolf = memSens("twolf");
    twolf.chaseFrac = 0.20;
    twolf.randomFrac = 0.50;
    twolf.seqFrac = 0.30;
    twolf.privateBytes = 8ull << 20;
    apps.push_back(twolf);

    return apps;
}

} // namespace

const std::vector<AppParams> &
parallelApps()
{
    static const std::vector<AppParams> apps = buildParallel();
    return apps;
}

const std::vector<AppParams> &
singleApps()
{
    static const std::vector<AppParams> singles = buildSingles();
    return singles;
}

namespace
{

const AppParams *
lookupApp(const std::string &name)
{
    for (const AppParams &params : parallelApps()) {
        if (params.name == name)
            return &params;
    }
    for (const AppParams &params : singleApps()) {
        if (params.name == name)
            return &params;
    }
    return nullptr;
}

} // namespace

const AppParams &
appParams(const std::string &name)
{
    if (const AppParams *params = lookupApp(name))
        return *params;
    fatal("unknown application model '", name, "'");
}

bool
haveApp(const std::string &name)
{
    return lookupApp(name) != nullptr;
}

const std::vector<Bundle> &
multiprogBundles()
{
    static const std::vector<Bundle> bundles = {
        {"AELV", {"ammp", "ep", "lu", "vpr"}},
        {"CMLI", {"crafty", "mesa", "lu", "is"}},
        {"GAMV", {"mg_st", "ammp", "mesa", "vpr"}},
        {"GDPC", {"mg_st", "mgrid", "parser", "crafty"}},
        {"GSMV", {"mg_st", "sp", "mesa", "vpr"}},
        {"RFEV", {"art_st", "mcf", "ep", "vpr"}},
        {"RFGI", {"art_st", "mcf", "mg_st", "is"}},
        {"RGTM", {"art_st", "mg_st", "twolf", "mesa"}},
    };
    return bundles;
}

const Bundle *
findBundle(const std::string &name)
{
    for (const Bundle &bundle : multiprogBundles()) {
        if (bundle.name == name)
            return &bundle;
    }
    return nullptr;
}

namespace
{

std::vector<TraceWorkload> &
traceRegistry()
{
    static std::vector<TraceWorkload> traces;
    return traces;
}

} // namespace

const TraceWorkload &
registerTraceWorkload(const std::string &name, const std::string &path,
                      const ingest::IngestOptions &opts)
{
    if (name.empty())
        throw std::runtime_error("trace workload name is empty");
    if (name.find('/') != std::string::npos ||
        name.find_first_of(" \t") != std::string::npos) {
        throw std::runtime_error("trace workload name '" + name +
                                 "' contains '/' or whitespace");
    }
    if (haveApp(name) || findBundle(name) != nullptr) {
        throw std::runtime_error(
            "trace workload name '" + name +
            "' collides with a built-in application or bundle");
    }
    ConfigErrors errors;
    opts.validate(errors);
    if (!errors.empty()) {
        std::string msg = "invalid trace options for '" + name + "':";
        for (const ConfigError &e : errors)
            msg += " [" + e.field + "] " + e.message;
        throw std::runtime_error(msg);
    }
    for (const TraceWorkload &wl : traceRegistry()) {
        if (wl.name == name && wl.path != path) {
            throw std::runtime_error(
                "trace workload '" + name +
                "' is already registered with path '" + wl.path +
                "'");
        }
    }

    const ingest::ScanSummary sum = ingest::scanTrace(path, opts);
    if (sum.records == 0) {
        throw TraceError("trace '" + path +
                             "' yields no records under policy '" +
                             std::string(ingest::toString(
                                 opts.policy)) +
                             "'",
                         sum.truncated ? sum.truncatedAtByte : 0);
    }
    for (std::uint32_t c = 0; c < sum.numCores; ++c) {
        if (sum.perCoreRecords[c] == 0) {
            throw TraceError(
                "trace '" + path + "' declares " +
                    std::to_string(sum.numCores) +
                    " cores but has no records for core " +
                    std::to_string(c) +
                    " (the loop replay would starve it)",
                0);
        }
    }

    TraceWorkload entry;
    entry.name = name;
    entry.path = path;
    entry.options = opts;
    entry.numCores = sum.numCores;
    entry.records = sum.records;
    entry.dropped = sum.dropped;
    entry.contentHash = sum.contentHash;
    entry.coreRegions = sum.coreRegions;

    for (TraceWorkload &wl : traceRegistry()) {
        if (wl.name == name) {
            wl = std::move(entry);
            return wl;
        }
    }
    traceRegistry().push_back(std::move(entry));
    return traceRegistry().back();
}

const std::vector<TraceWorkload> &
traceWorkloads()
{
    return traceRegistry();
}

const TraceWorkload *
findTraceWorkload(const std::string &name)
{
    for (const TraceWorkload &wl : traceRegistry()) {
        if (wl.name == name)
            return &wl;
    }
    return nullptr;
}

void
clearTraceWorkloads()
{
    traceRegistry().clear();
}

} // namespace critmem

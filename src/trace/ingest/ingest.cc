#include "trace/ingest/ingest.hh"

#include <algorithm>
#include <array>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string_view>

#ifdef CRITMEM_HAVE_ZLIB
#include <zlib.h>
#endif

namespace critmem
{
namespace ingest
{

namespace
{

constexpr std::size_t kBinHeaderBytes = 8;
constexpr std::size_t kBinPayloadMin = 24;

// ------------------------------------------------------------- sources

/** Raw decoded byte stream (plain file, or the gzip transport). */
class ByteSource
{
  public:
    virtual ~ByteSource() = default;

    /** Up to @p n bytes into @p buf; 0 = EOF. Throws TraceError. */
    virtual std::size_t read(std::uint8_t *buf, std::size_t n) = 0;

    virtual void rewind() = 0;
};

class FileSource : public ByteSource
{
  public:
    explicit FileSource(const std::string &path)
        : path_(path), file_(std::fopen(path.c_str(), "rb"))
    {
        if (!file_) {
            throw TraceError("cannot open trace file '" + path + "'",
                             0);
        }
    }

    ~FileSource() override { std::fclose(file_); }

    std::size_t
    read(std::uint8_t *buf, std::size_t n) override
    {
        const std::size_t got = std::fread(buf, 1, n, file_);
        consumed_ += got;
        if (got < n && std::ferror(file_)) {
            throw TraceError("I/O error reading trace '" + path_ +
                                 "'",
                             consumed_);
        }
        return got;
    }

    void
    rewind() override
    {
        std::rewind(file_);
        consumed_ = 0;
    }

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
    std::uint64_t consumed_ = 0;
};

#ifdef CRITMEM_HAVE_ZLIB

/**
 * Streaming gzip inflater. Error offsets from this layer are into the
 * compressed file (the decoder's offsets are into the decompressed
 * stream); the messages say which. Concatenated gzip members are
 * accepted, matching `gzip -c a b > c`.
 */
class GzipSource : public ByteSource
{
  public:
    explicit GzipSource(const std::string &path)
        : path_(path), file_(std::fopen(path.c_str(), "rb"))
    {
        if (!file_) {
            throw TraceError("cannot open trace file '" + path + "'",
                             0);
        }
        if (!initStream()) {
            std::fclose(file_);
            throw TraceError("zlib inflateInit failed for '" + path +
                                 "'",
                             0);
        }
    }

    ~GzipSource() override
    {
        inflateEnd(&strm_);
        std::fclose(file_);
    }

    std::size_t
    read(std::uint8_t *buf, std::size_t n) override
    {
        if (done_)
            return 0;
        strm_.next_out = buf;
        strm_.avail_out = static_cast<uInt>(n);
        while (strm_.avail_out > 0 && !done_) {
            const uInt inBefore = strm_.avail_in;
            const uInt outBefore = strm_.avail_out;
            const bool couldRefill = strm_.avail_in == 0 && !fileEof_;
            if (couldRefill)
                refill();
            if (memberEnd_) {
                if (strm_.avail_in == 0 && fileEof_) {
                    done_ = true;
                    break;
                }
                // Trailing compressed bytes: a concatenated member.
                if (inflateReset(&strm_) != Z_OK) {
                    throw TraceError("zlib inflateReset failed for '" +
                                         path_ + "'",
                                     consumed());
                }
                memberEnd_ = false;
                continue;
            }
            if (strm_.avail_in == 0 && fileEof_) {
                throw TraceError("gzip stream in '" + path_ +
                                     "' ends mid-member (truncated "
                                     "at compressed byte " +
                                     std::to_string(fed_) + ")",
                                 fed_);
            }
            const int rc = inflate(&strm_, Z_NO_FLUSH);
            if (rc == Z_STREAM_END) {
                memberEnd_ = true;
                continue;
            }
            if (rc != Z_OK && rc != Z_BUF_ERROR) {
                const char *what =
                    strm_.msg ? strm_.msg : "corrupt deflate data";
                throw TraceError("gzip error in '" + path_ + "': " +
                                     what + " (at compressed byte " +
                                     std::to_string(consumed()) + ")",
                                 consumed());
            }
            // A full pass with no refill and no progress would loop
            // forever on degenerate input; treat it as corruption.
            if (!couldRefill && strm_.avail_in == inBefore &&
                strm_.avail_out == outBefore) {
                throw TraceError("gzip stream in '" + path_ +
                                     "' makes no progress "
                                     "(at compressed byte " +
                                     std::to_string(consumed()) + ")",
                                 consumed());
            }
        }
        return n - strm_.avail_out;
    }

    void
    rewind() override
    {
        std::rewind(file_);
        inflateEnd(&strm_);
        if (!initStream()) {
            throw TraceError("zlib inflateInit failed for '" + path_ +
                                 "'",
                             0);
        }
        fed_ = 0;
        fileEof_ = false;
        memberEnd_ = false;
        done_ = false;
    }

  private:
    bool
    initStream()
    {
        std::memset(&strm_, 0, sizeof(strm_));
        // 16 + MAX_WBITS: gzip wrapper with the full 32 KiB window.
        return inflateInit2(&strm_, 16 + MAX_WBITS) == Z_OK;
    }

    void
    refill()
    {
        const std::size_t got =
            std::fread(inBuf_.data(), 1, inBuf_.size(), file_);
        if (got < inBuf_.size()) {
            if (std::ferror(file_)) {
                throw TraceError("I/O error reading trace '" + path_ +
                                     "'",
                                 fed_ + got);
            }
            fileEof_ = true;
        }
        strm_.next_in = inBuf_.data();
        strm_.avail_in = static_cast<uInt>(got);
        fed_ += got;
    }

    /** Compressed bytes fully consumed by the inflater. */
    std::uint64_t consumed() const { return fed_ - strm_.avail_in; }

    std::string path_;
    std::FILE *file_ = nullptr;
    z_stream strm_{};
    std::array<std::uint8_t, 16 * 1024> inBuf_{};
    std::uint64_t fed_ = 0;
    bool fileEof_ = false;
    bool memberEnd_ = false;
    bool done_ = false;
};

#endif // CRITMEM_HAVE_ZLIB

std::unique_ptr<ByteSource>
openSource(const std::string &path)
{
    // Route the gzip transport on the raw file magic; everything
    // downstream sees the decoded stream.
    std::uint8_t magic[2] = {0, 0};
    {
        std::FILE *probe = std::fopen(path.c_str(), "rb");
        if (!probe) {
            throw TraceError("cannot open trace file '" + path + "'",
                             0);
        }
        const std::size_t got = std::fread(magic, 1, 2, probe);
        std::fclose(probe);
        if (got < 2)
            magic[0] = magic[1] = 0; // too short; header parser reports
    }
    if (magic[0] == 0x1f && magic[1] == 0x8b) {
#ifdef CRITMEM_HAVE_ZLIB
        return std::make_unique<GzipSource>(path);
#else
        throw TraceError("'" + path +
                             "' is gzip-compressed but this build "
                             "has no zlib; decompress it first",
                         0);
#endif
    }
    return std::make_unique<FileSource>(path);
}

// --------------------------------------------------- buffered input

/** Buffered reader tracking the decoded-stream byte offset. */
class Input
{
  public:
    explicit Input(std::unique_ptr<ByteSource> src)
        : src_(std::move(src))
    {
    }

    /** Next byte, or -1 at end of stream. */
    int
    get()
    {
        if (pos_ == len_ && !fill())
            return -1;
        ++offset_;
        return buf_[pos_++];
    }

    /**
     * Copy the next @p n bytes without consuming them; returns how
     * many were available (n must fit the buffer; callers peek <= 8).
     */
    std::size_t
    peek(std::uint8_t *out, std::size_t n)
    {
        while (len_ - pos_ < n) {
            std::memmove(buf_.data(), buf_.data() + pos_,
                         len_ - pos_);
            len_ -= pos_;
            pos_ = 0;
            const std::size_t got =
                src_->read(buf_.data() + len_, buf_.size() - len_);
            if (got == 0)
                break;
            len_ += got;
        }
        const std::size_t have = std::min(n, len_ - pos_);
        std::memcpy(out, buf_.data() + pos_, have);
        return have;
    }

    /** Read up to @p n bytes; returns the count actually read. */
    std::size_t
    read(std::uint8_t *out, std::size_t n)
    {
        std::size_t done = 0;
        while (done < n) {
            if (pos_ == len_ && !fill())
                break;
            const std::size_t take =
                std::min(n - done, len_ - pos_);
            std::memcpy(out + done, buf_.data() + pos_, take);
            pos_ += take;
            done += take;
        }
        offset_ += done;
        return done;
    }

    /** Offset of the next unread byte in the decoded stream. */
    std::uint64_t offset() const { return offset_; }

    void
    rewind()
    {
        src_->rewind();
        pos_ = len_ = 0;
        offset_ = 0;
    }

  private:
    bool
    fill()
    {
        pos_ = 0;
        len_ = src_->read(buf_.data(), buf_.size());
        return len_ > 0;
    }

    std::unique_ptr<ByteSource> src_;
    std::array<std::uint8_t, 64 * 1024> buf_{};
    std::size_t pos_ = 0;
    std::size_t len_ = 0;
    std::uint64_t offset_ = 0;
};

// ------------------------------------------------------ field parsing

/** Strict u64 parse: full token, decimal or 0x-hex, no sign. */
bool
parseU64(std::string_view text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    const char *begin = text.data();
    const char *end = begin + text.size();
    std::from_chars_result res{};
    if (text.size() > 2 && begin[0] == '0' &&
        (begin[1] == 'x' || begin[1] == 'X')) {
        res = std::from_chars(begin + 2, end, out, 16);
    } else {
        res = std::from_chars(begin, end, out, 10);
    }
    return res.ec == std::errc() && res.ptr == end;
}

bool
classFromLetter(char c, OpClass &cls)
{
    switch (c) {
      case 'A': cls = OpClass::IntAlu; return true;
      case 'M': cls = OpClass::IntMul; return true;
      case 'F': cls = OpClass::FpAlu; return true;
      case 'G': cls = OpClass::FpMul; return true;
      case 'L': cls = OpClass::Load; return true;
      case 'S': cls = OpClass::Store; return true;
      case 'B': cls = OpClass::Branch; return true;
    }
    return false;
}

} // namespace

// ----------------------------------------------------------- decoder

class DecoderImpl
{
  public:
    DecoderImpl(const std::string &path, const IngestOptions &opts)
        : path_(path), opts_(opts), input_(openSource(path))
    {
        detectFormat();
        parseHeader();
    }

    bool
    next(TraceRecord &rec)
    {
        if (eof_)
            return false;
        for (;;) {
            Issue issue;
            const Step s = format_ == TraceFormat::Binary
                ? parseBinaryRecord(rec, issue)
                : parseTextRecord(rec, issue);
            if (s == Step::Eof) {
                eof_ = true;
                return false;
            }
            if (s == Step::Ok) {
                ++stats_.records;
                return true;
            }
            if (opts_.policy == RecoveryPolicy::Truncate) {
                stats_.truncated = true;
                stats_.truncatedAtByte = issue.off;
                eof_ = true;
                return false;
            }
            if (issue.structural ||
                opts_.policy == RecoveryPolicy::Fail)
                throw TraceError(issue.msg, issue.off);
            // SkipRecord on a resyncable (content) error.
            ++stats_.dropped;
            if (dropCounter_)
                ++*dropCounter_;
            if (stats_.dropped > opts_.skipBudget) {
                throw TraceError(
                    issue.msg + "; skip budget of " +
                        std::to_string(opts_.skipBudget) +
                        " exhausted",
                    issue.off);
            }
        }
    }

    void
    rewind()
    {
        input_.rewind();
        stats_ = PassStats{};
        eof_ = false;
        parseHeader();
    }

    std::string path_;
    IngestOptions opts_;
    Input input_;
    TraceFormat format_ = TraceFormat::Text; // resolved, never Auto
    std::uint32_t numCores_ = 0;
    PassStats stats_;
    stats::Scalar *dropCounter_ = nullptr;

  private:
    enum class Step : std::uint8_t { Ok, Eof, Bad };
    enum class LineStatus : std::uint8_t { Ok, Eof, TooLong };

    /** One decode problem, classified for the recovery policy. */
    struct Issue
    {
        std::string msg;
        std::uint64_t off = 0;
        /** True when the stream cannot resync past the problem. */
        bool structural = false;
    };

    struct Token
    {
        std::string_view text;
        std::uint64_t off = 0;
    };

    void
    detectFormat()
    {
        if (opts_.format != TraceFormat::Auto) {
            format_ = opts_.format;
            return;
        }
        std::uint8_t magic[6] = {};
        const std::size_t got = input_.peek(magic, 6);
        if (got >= 4 && std::memcmp(magic, "CTIB", 4) == 0) {
            format_ = TraceFormat::Binary;
            return;
        }
        if (got >= 6 && std::memcmp(magic, "ctrace", 6) == 0) {
            format_ = TraceFormat::Text;
            return;
        }
        // The record/replay format's little-endian magic, for a
        // friendlier redirect than "unrecognized".
        static const std::uint8_t ctmt[4] = {0x54, 0x4d, 0x54, 0x43};
        if (got >= 4 && std::memcmp(magic, ctmt, 4) == 0) {
            throw TraceError(
                "'" + path_ +
                    "' is a critmem record/replay trace (CTMT); "
                    "ingest reads ctext/cbin",
                0);
        }
        throw TraceError("unrecognized trace format in '" + path_ +
                             "' (expected a 'ctrace text' or 'CTIB' "
                             "header)",
                         0);
    }

    void
    parseHeader()
    {
        if (format_ == TraceFormat::Binary)
            parseBinaryHeader();
        else
            parseTextHeader();
    }

    void
    parseBinaryHeader()
    {
        std::uint8_t hdr[kBinHeaderBytes] = {};
        const std::uint64_t start = input_.offset();
        const std::size_t got = input_.read(hdr, kBinHeaderBytes);
        if (got < kBinHeaderBytes) {
            throw TraceError("binary trace '" + path_ +
                                 "' is shorter than its 8-byte "
                                 "header",
                             start + got);
        }
        static const char magic[4] = {'C', 'T', 'I', 'B'};
        for (std::size_t i = 0; i < 4; ++i) {
            if (hdr[i] != static_cast<std::uint8_t>(magic[i])) {
                throw TraceError("binary trace '" + path_ +
                                     "' has bad magic",
                                 start + i);
            }
        }
        if (hdr[4] != 1) {
            throw TraceError("binary trace '" + path_ +
                                 "' has unsupported version " +
                                 std::to_string(hdr[4]),
                             start + 4);
        }
        if (hdr[5] == 0) {
            throw TraceError("binary trace '" + path_ +
                                 "' declares zero cores",
                             start + 5);
        }
        if (hdr[5] > opts_.limits.maxCores) {
            throw TraceError("binary trace '" + path_ +
                                 "' declares " +
                                 std::to_string(hdr[5]) +
                                 " cores (cap " +
                                 std::to_string(
                                     opts_.limits.maxCores) +
                                 ")",
                             start + 5);
        }
        if (hdr[6] != 0 || hdr[7] != 0) {
            throw TraceError("binary trace '" + path_ +
                                 "' has nonzero reserved header "
                                 "bytes",
                             start + (hdr[6] != 0 ? 6 : 7));
        }
        numCores_ = hdr[5];
    }

    void
    parseTextHeader()
    {
        std::uint64_t lineStart = 0;
        const LineStatus st = readLine(lineStart);
        if (st == LineStatus::Eof) {
            throw TraceError("text trace '" + path_ + "' is empty",
                             0);
        }
        if (st == LineStatus::TooLong) {
            throw TraceError(
                "text trace '" + path_ +
                    "' header line exceeds the " +
                    std::to_string(opts_.limits.maxLineBytes) +
                    "-byte line cap",
                input_.offset());
        }
        splitLine(lineStart);
        if (toks_.size() != 4 || toks_[0].text != "ctrace" ||
            toks_[1].text != "text") {
            throw TraceError("text trace '" + path_ +
                                 "' header must be 'ctrace text 1 "
                                 "<numCores>'",
                             lineStart);
        }
        std::uint64_t version = 0;
        if (!parseU64(toks_[2].text, version) || version != 1) {
            throw TraceError("text trace '" + path_ +
                                 "' has unsupported version '" +
                                 std::string(toks_[2].text) + "'",
                             toks_[2].off);
        }
        std::uint64_t cores = 0;
        if (!parseU64(toks_[3].text, cores)) {
            throw TraceError("text trace '" + path_ +
                                 "' core count '" +
                                 std::string(toks_[3].text) +
                                 "' is not a number",
                             toks_[3].off);
        }
        if (cores == 0) {
            throw TraceError("text trace '" + path_ +
                                 "' declares zero cores",
                             toks_[3].off);
        }
        if (cores > opts_.limits.maxCores) {
            throw TraceError("text trace '" + path_ + "' declares " +
                                 std::to_string(cores) +
                                 " cores (cap " +
                                 std::to_string(
                                     opts_.limits.maxCores) +
                                 ")",
                             toks_[3].off);
        }
        numCores_ = static_cast<std::uint32_t>(cores);
    }

    /**
     * Read one line into line_ (newline excluded, trailing CR
     * stripped), bounded by the line cap.
     */
    LineStatus
    readLine(std::uint64_t &lineStart)
    {
        line_.clear();
        lineStart = input_.offset();
        for (;;) {
            const int c = input_.get();
            if (c < 0) {
                if (line_.empty())
                    return LineStatus::Eof;
                break;
            }
            if (c == '\n')
                break;
            if (line_.size() >= opts_.limits.maxLineBytes)
                return LineStatus::TooLong;
            line_.push_back(static_cast<char>(c));
        }
        if (!line_.empty() && line_.back() == '\r')
            line_.pop_back();
        return LineStatus::Ok;
    }

    /** Whitespace-split line_ into toks_; '#' starts a comment. */
    void
    splitLine(std::uint64_t lineStart)
    {
        toks_.clear();
        const std::string_view line(line_);
        std::size_t i = 0;
        while (i < line.size()) {
            const unsigned char c =
                static_cast<unsigned char>(line[i]);
            if (line[i] == '#')
                break;
            if (std::isspace(c)) {
                ++i;
                continue;
            }
            std::size_t j = i;
            while (j < line.size() && line[j] != '#' &&
                   !std::isspace(
                       static_cast<unsigned char>(line[j])))
                ++j;
            toks_.push_back({line.substr(i, j - i), lineStart + i});
            i = j;
        }
    }

    Step
    parseTextRecord(TraceRecord &rec, Issue &issue)
    {
        for (;;) {
            std::uint64_t lineStart = 0;
            const LineStatus st = readLine(lineStart);
            if (st == LineStatus::Eof)
                return Step::Eof;
            if (st == LineStatus::TooLong) {
                issue = {"text line starting at byte " +
                             std::to_string(lineStart) +
                             " exceeds the " +
                             std::to_string(
                                 opts_.limits.maxLineBytes) +
                             "-byte line cap",
                         input_.offset(), true};
                return Step::Bad;
            }
            splitLine(lineStart);
            if (!toks_.empty())
                break; // a record; blank/comment lines loop
        }
        if (toks_.size() < 4) {
            issue = {"record has only " +
                         std::to_string(toks_.size()) +
                         " fields (need core cls pc addr)",
                     toks_[0].off, false};
            return Step::Bad;
        }
        if (toks_.size() > 8) {
            issue = {"record has " + std::to_string(toks_.size()) +
                         " fields (at most 8)",
                     toks_[8].off, false};
            return Step::Bad;
        }

        std::uint64_t core = 0;
        if (!parseU64(toks_[0].text, core)) {
            issue = {"core id '" + std::string(toks_[0].text) +
                         "' is not a number",
                     toks_[0].off, false};
            return Step::Bad;
        }
        if (core >= numCores_) {
            issue = {"core id " + std::to_string(core) +
                         " out of range (trace declares " +
                         std::to_string(numCores_) + " cores)",
                     toks_[0].off, false};
            return Step::Bad;
        }

        OpClass cls = OpClass::IntAlu;
        if (toks_[1].text.size() != 1 ||
            !classFromLetter(toks_[1].text[0], cls)) {
            issue = {"unknown op class '" +
                         std::string(toks_[1].text) +
                         "' (expected one of A M F G L S B)",
                     toks_[1].off, false};
            return Step::Bad;
        }

        std::uint64_t pc = 0, addr = 0;
        if (!parseU64(toks_[2].text, pc)) {
            issue = {"pc '" + std::string(toks_[2].text) +
                         "' is not a number",
                     toks_[2].off, false};
            return Step::Bad;
        }
        if (!parseU64(toks_[3].text, addr)) {
            issue = {"address '" + std::string(toks_[3].text) +
                         "' is not a number",
                     toks_[3].off, false};
            return Step::Bad;
        }

        std::uint64_t latency = 1;
        if (toks_.size() > 4 &&
            (!parseU64(toks_[4].text, latency) || latency == 0 ||
             latency > 255)) {
            issue = {"latency '" + std::string(toks_[4].text) +
                         "' is not in 1..255",
                     toks_[4].off, false};
            return Step::Bad;
        }
        std::uint64_t dep1 = 0, dep2 = 0;
        if (toks_.size() > 5 &&
            (!parseU64(toks_[5].text, dep1) || dep1 > 0xffff)) {
            issue = {"dep1 '" + std::string(toks_[5].text) +
                         "' is not in 0..65535",
                     toks_[5].off, false};
            return Step::Bad;
        }
        if (toks_.size() > 6 &&
            (!parseU64(toks_[6].text, dep2) || dep2 > 0xffff)) {
            issue = {"dep2 '" + std::string(toks_[6].text) +
                         "' is not in 0..65535",
                     toks_[6].off, false};
            return Step::Bad;
        }
        std::uint64_t mispredict = 0;
        if (toks_.size() > 7 &&
            (!parseU64(toks_[7].text, mispredict) ||
             mispredict > 1)) {
            issue = {"mispredict flag '" +
                         std::string(toks_[7].text) +
                         "' is not 0 or 1",
                     toks_[7].off, false};
            return Step::Bad;
        }

        rec.core = static_cast<std::uint32_t>(core);
        rec.op = MicroOp{};
        rec.op.cls = cls;
        rec.op.pc = pc;
        rec.op.addr = addr;
        rec.op.latency = static_cast<std::uint8_t>(latency);
        rec.op.dep1 = static_cast<std::uint16_t>(dep1);
        rec.op.dep2 = static_cast<std::uint16_t>(dep2);
        rec.op.mispredict = mispredict != 0;
        return Step::Ok;
    }

    Step
    parseBinaryRecord(TraceRecord &rec, Issue &issue)
    {
        const std::uint64_t recStart = input_.offset();
        std::uint8_t lenBuf[2] = {};
        std::size_t got = input_.read(lenBuf, 2);
        if (got == 0)
            return Step::Eof;
        if (got == 1) {
            issue = {"record length prefix at byte " +
                         std::to_string(recStart) +
                         " is torn by end of file",
                     input_.offset(), true};
            return Step::Bad;
        }
        const std::uint16_t len = static_cast<std::uint16_t>(
            lenBuf[0] | (lenBuf[1] << 8));
        if (len < kBinPayloadMin) {
            issue = {"record at byte " + std::to_string(recStart) +
                         " declares a " + std::to_string(len) +
                         "-byte payload (min 24)",
                     recStart, true};
            return Step::Bad;
        }
        if (len > opts_.limits.maxRecordBytes) {
            issue = {"record at byte " + std::to_string(recStart) +
                         " declares a " + std::to_string(len) +
                         "-byte payload (cap " +
                         std::to_string(
                             opts_.limits.maxRecordBytes) +
                         ")",
                     recStart, true};
            return Step::Bad;
        }
        payload_.resize(len);
        got = input_.read(payload_.data(), len);
        if (got < len) {
            issue = {"record at byte " + std::to_string(recStart) +
                         " is torn by end of file",
                     recStart + 2 + got, true};
            return Step::Bad;
        }

        // Payload layout: core, cls, latency, flags, pc, addr, deps.
        if (payload_[0] >= numCores_) {
            issue = {"core id " + std::to_string(payload_[0]) +
                         " out of range (trace declares " +
                         std::to_string(numCores_) + " cores)",
                     recStart + 2, false};
            return Step::Bad;
        }
        if (payload_[1] >
            static_cast<std::uint8_t>(OpClass::Branch)) {
            issue = {"invalid op class " +
                         std::to_string(payload_[1]),
                     recStart + 3, false};
            return Step::Bad;
        }
        if (payload_[2] == 0) {
            issue = {"latency 0 is not in 1..255", recStart + 4,
                     false};
            return Step::Bad;
        }
        if ((payload_[3] & ~std::uint8_t{1}) != 0) {
            issue = {"flags byte " + std::to_string(payload_[3]) +
                         " has reserved bits set",
                     recStart + 5, false};
            return Step::Bad;
        }

        rec.core = payload_[0];
        rec.op = MicroOp{};
        rec.op.cls = static_cast<OpClass>(payload_[1]);
        rec.op.latency = payload_[2];
        rec.op.mispredict = (payload_[3] & 1) != 0;
        std::memcpy(&rec.op.pc, payload_.data() + 4, 8);
        std::memcpy(&rec.op.addr, payload_.data() + 12, 8);
        std::memcpy(&rec.op.dep1, payload_.data() + 20, 2);
        std::memcpy(&rec.op.dep2, payload_.data() + 22, 2);
        // Payload bytes past 24 are a forward-compat extension area.
        return Step::Ok;
    }

    bool eof_ = false;
    std::string line_;
    std::vector<Token> toks_;
    std::vector<std::uint8_t> payload_;
};

// --------------------------------------------------------- wrappers

TraceDecoder::TraceDecoder(const std::string &path,
                           const IngestOptions &opts)
    : impl_(std::make_unique<DecoderImpl>(path, opts))
{
}

TraceDecoder::~TraceDecoder() = default;

bool
TraceDecoder::next(TraceRecord &rec)
{
    return impl_->next(rec);
}

void
TraceDecoder::rewind()
{
    impl_->rewind();
}

std::uint32_t
TraceDecoder::numCores() const
{
    return impl_->numCores_;
}

TraceFormat
TraceDecoder::format() const
{
    return impl_->format_;
}

const PassStats &
TraceDecoder::passStats() const
{
    return impl_->stats_;
}

const std::string &
TraceDecoder::path() const
{
    return impl_->path_;
}

void
TraceDecoder::setDropCounter(stats::Scalar *dropped)
{
    impl_->dropCounter_ = dropped;
}

// ------------------------------------------------------------- names

const char *
toString(RecoveryPolicy policy)
{
    switch (policy) {
      case RecoveryPolicy::Fail: return "fail";
      case RecoveryPolicy::SkipRecord: return "skip-record";
      case RecoveryPolicy::Truncate: return "truncate";
    }
    return "?";
}

bool
findRecoveryPolicy(const std::string &name, RecoveryPolicy &out)
{
    for (RecoveryPolicy p :
         {RecoveryPolicy::Fail, RecoveryPolicy::SkipRecord,
          RecoveryPolicy::Truncate}) {
        if (name == toString(p)) {
            out = p;
            return true;
        }
    }
    return false;
}

const char *
toString(TraceFormat fmt)
{
    switch (fmt) {
      case TraceFormat::Auto: return "auto";
      case TraceFormat::Text: return "text";
      case TraceFormat::Binary: return "binary";
    }
    return "?";
}

bool
findTraceFormat(const std::string &name, TraceFormat &out)
{
    for (TraceFormat f : {TraceFormat::Auto, TraceFormat::Text,
                          TraceFormat::Binary}) {
        if (name == toString(f)) {
            out = f;
            return true;
        }
    }
    return false;
}

void
IngestLimits::validate(ConfigErrors &errors) const
{
    if (maxLineBytes < 64 || maxLineBytes > kHardMaxBytes) {
        errors.push_back({"trace.maxLineBytes",
                          "must be in [64, " +
                              std::to_string(kHardMaxBytes) +
                              "], got " +
                              std::to_string(maxLineBytes)});
    }
    if (maxRecordBytes < 24 || maxRecordBytes > kHardMaxBytes) {
        errors.push_back({"trace.maxRecordBytes",
                          "must be in [24, " +
                              std::to_string(kHardMaxBytes) +
                              "], got " +
                              std::to_string(maxRecordBytes)});
    }
    if (maxCores < 1 || maxCores > kHardMaxCores) {
        errors.push_back({"trace.maxCores",
                          "must be in [1, " +
                              std::to_string(kHardMaxCores) +
                              "], got " + std::to_string(maxCores)});
    }
}

void
IngestOptions::validate(ConfigErrors &errors) const
{
    limits.validate(errors);
}

bool
haveGzip()
{
#ifdef CRITMEM_HAVE_ZLIB
    return true;
#else
    return false;
#endif
}

// -------------------------------------------------------------- scan

std::uint64_t
hashFileBytes(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        throw TraceError("cannot open trace file '" + path + "'", 0);
    std::uint64_t hash = 1469598103934665603ull;
    std::array<std::uint8_t, 64 * 1024> buf;
    std::uint64_t consumed = 0;
    std::size_t got = 0;
    while ((got = std::fread(buf.data(), 1, buf.size(), file)) > 0) {
        for (std::size_t i = 0; i < got; ++i) {
            hash ^= buf[i];
            hash *= 1099511628211ull;
        }
        consumed += got;
    }
    const bool bad = std::ferror(file) != 0;
    std::fclose(file);
    if (bad) {
        throw TraceError("I/O error hashing trace '" + path + "'",
                         consumed);
    }
    return hash;
}

ScanSummary
scanTrace(const std::string &path, const IngestOptions &opts)
{
    TraceDecoder dec(path, opts);
    ScanSummary sum;
    sum.format = dec.format();
    sum.numCores = dec.numCores();
    sum.perCoreRecords.assign(sum.numCores, 0);
    std::vector<Addr> lo(sum.numCores, kNoAddr);
    std::vector<Addr> hi(sum.numCores, 0);
    TraceRecord rec;
    while (dec.next(rec)) {
        ++sum.perCoreRecords[rec.core];
        if (rec.op.cls == OpClass::Load ||
            rec.op.cls == OpClass::Store) {
            lo[rec.core] = std::min(lo[rec.core], rec.op.addr);
            hi[rec.core] = std::max(hi[rec.core], rec.op.addr);
        }
    }
    const PassStats &ps = dec.passStats();
    sum.records = ps.records;
    sum.dropped = ps.dropped;
    sum.truncated = ps.truncated;
    sum.truncatedAtByte = ps.truncatedAtByte;
    sum.coreRegions.resize(sum.numCores, {0, 0});
    for (std::uint32_t c = 0; c < sum.numCores; ++c) {
        if (lo[c] == kNoAddr)
            continue; // no memory ops on this core
        const std::uint64_t span = hi[c] - lo[c];
        const std::uint64_t most =
            std::numeric_limits<std::uint64_t>::max() - 64;
        sum.coreRegions[c] = {lo[c],
                              span > most ? span : span + 64};
    }
    sum.contentHash = hashFileBytes(path);
    return sum;
}

// ------------------------------------------------------------ reader

ExternalTraceReader::ExternalTraceReader(
    std::string name, const std::string &path,
    const IngestOptions &opts, std::uint32_t core,
    std::vector<std::pair<Addr, std::uint64_t>> farRegions,
    stats::Scalar *records, stats::Scalar *dropped)
    : name_(std::move(name)), core_(core), decoder_(path, opts),
      far_(std::move(farRegions)), records_(records)
{
    decoder_.setDropCounter(dropped);
    if (core_ >= decoder_.numCores()) {
        throw TraceError("core " + std::to_string(core_) +
                             " out of range for trace '" + path +
                             "' (declares " +
                             std::to_string(decoder_.numCores()) +
                             " cores)",
                         0);
    }
}

void
ExternalTraceReader::next(MicroOp &op)
{
    TraceRecord rec;
    for (;;) {
        if (!decoder_.next(rec)) {
            if (matchedThisPass_ == 0) {
                throw TraceError(
                    "trace '" + decoder_.path() +
                        "' yields no records for core " +
                        std::to_string(core_) +
                        "; the stream cannot loop",
                    0);
            }
            matchedThisPass_ = 0;
            decoder_.rewind();
            continue;
        }
        if (rec.core != core_)
            continue;
        ++matchedThisPass_;
        if (records_)
            ++*records_;
        op = rec.op;
        return;
    }
}

} // namespace ingest
} // namespace critmem

/**
 * @file
 * Streaming, bounded-memory ingestion of external memory traces.
 *
 * Two on-disk formats are decoded into per-core MicroOp streams:
 *
 *  - "ctext": a ChampSim-style whitespace text format. The first line
 *    is the header `ctrace text 1 <numCores>`; every following line is
 *    `<core> <cls> <pc> <addr> [latency [dep1 [dep2 [mispredict]]]]`
 *    where cls is one of A M F G L S B (IntAlu, IntMul, FpAlu, FpMul,
 *    Load, Store, Branch) and pc/addr accept 0x-hex or decimal.
 *    `#` starts a comment; blank lines are skipped.
 *
 *  - "cbin": a length-prefixed binary format. An 8-byte header
 *    ("CTIB", u8 version = 1, u8 numCores, u16 reserved = 0) is
 *    followed by records of a u16 little-endian payload length
 *    (>= 24) and the payload: core u8, cls u8, latency u8, flags u8
 *    (bit 0 = mispredict), pc u64le, addr u64le, dep1 u16le,
 *    dep2 u16le. Payload bytes past 24 are ignored (forward compat).
 *
 * Either format may be gzip-compressed (transport, detected by the
 * 1f 8b file magic) when the build found zlib; see haveGzip().
 *
 * Trace files are untrusted input. The decoder never crashes, hangs,
 * or silently misparses: every failure is a TraceError carrying the
 * exact byte offset of the offending field (offsets into the
 * decompressed stream for gzip sources), memory use is bounded by the
 * IngestLimits caps regardless of file content, and a per-source
 * RecoveryPolicy decides whether damaged records abort the run, are
 * skipped against a budget, or truncate the stream.
 */

#ifndef CRITMEM_TRACE_INGEST_INGEST_HH
#define CRITMEM_TRACE_INGEST_INGEST_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "trace/generator.hh"
#include "trace/trace_file.hh"

namespace critmem
{
namespace ingest
{

/** What to do when a trace record fails validation. */
enum class RecoveryPolicy : std::uint8_t
{
    Fail,       ///< throw TraceError on the first problem (default)
    SkipRecord, ///< drop damaged records, up to a budget
    Truncate,   ///< end the stream at the first problem
};

const char *toString(RecoveryPolicy policy);

/** Parse a policy name ("fail", "skip-record", "truncate"). */
bool findRecoveryPolicy(const std::string &name, RecoveryPolicy &out);

/**
 * On-disk trace format. Gzip is a transport, not a format: the file
 * magic selects it, and the decompressed stream is detected (or
 * forced) as text/binary independently.
 */
enum class TraceFormat : std::uint8_t
{
    Auto,   ///< detect from the (decompressed) magic bytes
    Text,   ///< "ctrace text 1 N" header
    Binary, ///< "CTIB" header
};

const char *toString(TraceFormat fmt);

/** Parse a format name ("auto", "text", "binary"). */
bool findTraceFormat(const std::string &name, TraceFormat &out);

/**
 * Hard caps that bound the decoder's memory use against hostile
 * input. A header or record exceeding a cap is a decode error (never
 * an allocation).
 */
struct IngestLimits
{
    /** Longest accepted text line, bytes (excluding the newline). */
    std::uint32_t maxLineBytes = 4096;
    /** Largest accepted binary record payload, bytes. */
    std::uint32_t maxRecordBytes = 512;
    /** Highest accepted core count in a trace header. */
    std::uint32_t maxCores = 64;

    /** Absolute bound on maxCores (per-core scan state is O(cores)). */
    static constexpr std::uint32_t kHardMaxCores = 1024;
    /** Absolute bound on the line/record caps. */
    static constexpr std::uint32_t kHardMaxBytes = 1u << 20;

    /** Append structured errors for out-of-range caps. */
    void validate(ConfigErrors &errors) const;
};

/** Everything configurable about one trace source. */
struct IngestOptions
{
    TraceFormat format = TraceFormat::Auto;
    RecoveryPolicy policy = RecoveryPolicy::Fail;
    /**
     * SkipRecord only: records that may be dropped per pass over the
     * file before the decoder gives up and throws.
     */
    std::uint64_t skipBudget = 64;
    IngestLimits limits;

    /** Append structured errors (delegates to limits). */
    void validate(ConfigErrors &errors) const;
};

/** Decoder counters for the current pass over the file. */
struct PassStats
{
    std::uint64_t records = 0; ///< records delivered
    std::uint64_t dropped = 0; ///< records skipped (SkipRecord)
    bool truncated = false;    ///< stream ended early (Truncate)
    std::uint64_t truncatedAtByte = 0; ///< where, when truncated
};

/** One decoded record: the micro-op and the core that executes it. */
struct TraceRecord
{
    MicroOp op;
    std::uint32_t core = 0;
};

/**
 * Pull-based streaming decoder over one trace file. Construction
 * opens the file and validates the header; next() decodes one record
 * at a time in O(maxLineBytes + maxRecordBytes) memory. rewind()
 * restarts the stream from the first record (resetting the per-pass
 * stats and skip budget). Not thread-safe; use one per consumer.
 */
class TraceDecoder
{
  public:
    /** @throws TraceError on open/header/format problems. */
    TraceDecoder(const std::string &path, const IngestOptions &opts);
    ~TraceDecoder();

    TraceDecoder(const TraceDecoder &) = delete;
    TraceDecoder &operator=(const TraceDecoder &) = delete;

    /**
     * Decode the next record into @p rec.
     * @return false at end of stream (including a Truncate cut).
     * @throws TraceError per the recovery policy.
     */
    bool next(TraceRecord &rec);

    /** Restart from the first record; resets the per-pass stats. */
    void rewind();

    /** Core count declared by the (validated) header. */
    std::uint32_t numCores() const;

    /** The detected (never Auto) format of this file. */
    TraceFormat format() const;

    const PassStats &passStats() const;

    const std::string &path() const;

    /**
     * Optional cumulative counter bumped once per dropped record
     * (survives rewind, unlike passStats().dropped).
     */
    void setDropCounter(stats::Scalar *dropped);

  private:
    std::unique_ptr<class DecoderImpl> impl_;
};

/** Whole-file summary produced by scanTrace(). */
struct ScanSummary
{
    TraceFormat format = TraceFormat::Text; ///< detected format
    std::uint32_t numCores = 0;
    std::uint64_t records = 0; ///< records accepted
    std::uint64_t dropped = 0; ///< records skipped by the policy
    bool truncated = false;
    std::uint64_t truncatedAtByte = 0;
    /** FNV-1a over the raw (compressed, if gzip) file bytes. */
    std::uint64_t contentHash = 0;
    /** Accepted records per core, indexed by core id. */
    std::vector<std::uint64_t> perCoreRecords;
    /**
     * Per-core (base, size) span of the Load/Store addresses seen —
     * the cache-prewarm regions for trace-backed workloads. Size 0
     * means the core issued no memory operations.
     */
    std::vector<std::pair<Addr, std::uint64_t>> coreRegions;
};

/**
 * Validate a whole trace in one streaming pass — every record is
 * decoded under @p opts exactly as a simulation would see it — and
 * summarize it. This is the pass the fuzzer drives and workload
 * registration runs.
 * @throws TraceError per the recovery policy.
 */
ScanSummary scanTrace(const std::string &path,
                      const IngestOptions &opts);

/**
 * FNV-1a (64-bit) over a file's raw bytes, for trace identity in
 * campaign hashes. @throws TraceError when the file is unreadable.
 */
std::uint64_t hashFileBytes(const std::string &path);

/** Whether this build can read gzip-compressed traces. */
bool haveGzip();

/**
 * Adapts one core's slice of a trace file to the TraceGenerator
 * interface. At end of file the stream loops back to the first
 * record, matching the synthetic generators' loop semantics. Throws
 * TraceError if a pass over the file yields no record for this core
 * (the stream would otherwise spin forever).
 */
class ExternalTraceReader : public TraceGenerator
{
  public:
    /**
     * @param name Workload name reported to stats/diagnostics.
     * @param path Trace file.
     * @param opts Decode options (validated by the caller).
     * @param core Core id whose records this generator yields.
     * @param farRegions Prewarm regions (from ScanSummary), already
     *        filtered to nonzero sizes.
     * @param records Optional cumulative delivered-record counter.
     * @param dropped Optional cumulative dropped-record counter.
     */
    ExternalTraceReader(
        std::string name, const std::string &path,
        const IngestOptions &opts, std::uint32_t core,
        std::vector<std::pair<Addr, std::uint64_t>> farRegions = {},
        stats::Scalar *records = nullptr,
        stats::Scalar *dropped = nullptr);

    void next(MicroOp &op) override;

    const std::string &name() const override { return name_; }

    std::vector<std::pair<Addr, std::uint64_t>>
    farRegions() const override
    {
        return far_;
    }

  private:
    std::string name_;
    std::uint32_t core_;
    TraceDecoder decoder_;
    std::vector<std::pair<Addr, std::uint64_t>> far_;
    stats::Scalar *records_;
    std::uint64_t matchedThisPass_ = 0;
};

} // namespace ingest
} // namespace critmem

#endif // CRITMEM_TRACE_INGEST_INGEST_HH

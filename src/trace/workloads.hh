/**
 * @file
 * Registry of workload models: the nine parallel applications of
 * Table 2, the single-threaded applications composing Table 4's
 * multiprogrammed bundles, the bundle definitions themselves, and
 * trace-backed workloads registered at run time from external trace
 * files (src/trace/ingest).
 */

#ifndef CRITMEM_TRACE_WORKLOADS_HH
#define CRITMEM_TRACE_WORKLOADS_HH

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "trace/ingest/ingest.hh"
#include "trace/synthetic.hh"

namespace critmem
{

/** The nine parallel applications (Table 2), in the paper's order. */
const std::vector<AppParams> &parallelApps();

/**
 * The single-threaded applications that compose the Table 4 bundles,
 * in the paper's order.
 */
const std::vector<AppParams> &singleApps();

/** Look up any registered application model by name. */
const AppParams &appParams(const std::string &name);

/** @return whether @p name is a registered application model. */
bool haveApp(const std::string &name);

/** A four-application multiprogrammed bundle (Table 4). */
struct Bundle
{
    std::string name;
    std::array<std::string, 4> apps;
};

/** The eight multiprogrammed bundles (Table 4). */
const std::vector<Bundle> &multiprogBundles();

/** Look up a bundle by name; nullptr when unknown. */
const Bundle *findBundle(const std::string &name);

/**
 * One registered trace-backed workload: an external trace file that
 * passed a full validating scan at registration time, plus the scan's
 * summary (identity hash, per-core footprints) that the execution
 * engine folds into campaign hashes and cache prewarming.
 */
struct TraceWorkload
{
    std::string name;
    std::string path;
    ingest::IngestOptions options;
    std::uint32_t numCores = 0;
    std::uint64_t records = 0; ///< accepted by the scan
    std::uint64_t dropped = 0; ///< skipped by the recovery policy
    std::uint64_t contentHash = 0; ///< FNV-1a of the raw file bytes
    /** Per-core (base, size) prewarm regions; size 0 = no mem ops. */
    std::vector<std::pair<Addr, std::uint64_t>> coreRegions;
};

/**
 * Scan, validate, and register @p path as trace workload @p name.
 * The whole file is decoded under @p opts up front, so a registered
 * workload is known to stream cleanly (and to feed every declared
 * core, which the loop-at-EOF replay requires). Re-registering the
 * same name with the same path rescans and refreshes the entry.
 *
 * Registration happens on the main thread before any worker runs
 * jobs; the registry is not synchronized.
 *
 * @throws TraceError when the file cannot be decoded, yields no
 *         records, or leaves a core without records.
 * @throws std::runtime_error on misuse: empty/conflicting names or
 *         invalid options.
 * @return the registered entry (stable until the next registration).
 */
const TraceWorkload &
registerTraceWorkload(const std::string &name, const std::string &path,
                      const ingest::IngestOptions &opts);

/** Every registered trace workload, in registration order. */
const std::vector<TraceWorkload> &traceWorkloads();

/** Look up a trace workload by name; nullptr when unknown. */
const TraceWorkload *findTraceWorkload(const std::string &name);

/** Drop every registered trace workload (tests only). */
void clearTraceWorkloads();

} // namespace critmem

#endif // CRITMEM_TRACE_WORKLOADS_HH

/**
 * @file
 * Registry of workload models: the nine parallel applications of
 * Table 2, the single-threaded applications composing Table 4's
 * multiprogrammed bundles, and the bundle definitions themselves.
 */

#ifndef CRITMEM_TRACE_WORKLOADS_HH
#define CRITMEM_TRACE_WORKLOADS_HH

#include <array>
#include <string>
#include <vector>

#include "trace/synthetic.hh"

namespace critmem
{

/** The nine parallel applications (Table 2), in the paper's order. */
const std::vector<AppParams> &parallelApps();

/**
 * The single-threaded applications that compose the Table 4 bundles,
 * in the paper's order.
 */
const std::vector<AppParams> &singleApps();

/** Look up any registered application model by name. */
const AppParams &appParams(const std::string &name);

/** @return whether @p name is a registered application model. */
bool haveApp(const std::string &name);

/** A four-application multiprogrammed bundle (Table 4). */
struct Bundle
{
    std::string name;
    std::array<std::string, 4> apps;
};

/** The eight multiprogrammed bundles (Table 4). */
const std::vector<Bundle> &multiprogBundles();

/** Look up a bundle by name; nullptr when unknown. */
const Bundle *findBundle(const std::string &name);

} // namespace critmem

#endif // CRITMEM_TRACE_WORKLOADS_HH

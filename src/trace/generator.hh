/**
 * @file
 * Abstract interface of a per-thread micro-op stream generator.
 */

#ifndef CRITMEM_TRACE_GENERATOR_HH
#define CRITMEM_TRACE_GENERATOR_HH

#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"
#include "trace/microop.hh"

namespace critmem
{

/** Produces one thread's dynamic micro-op stream. */
class TraceGenerator
{
  public:
    virtual ~TraceGenerator() = default;

    /** Write the next dynamic micro-op into @p op. */
    virtual void next(MicroOp &op) = 0;

    /** @return the workload's name. */
    virtual const std::string &name() const = 0;

    /**
     * The far (cache-overflowing) regions this thread touches, as
     * (base, size) pairs with size > 0 — used to prewarm the shared
     * cache with plausibly-resident lines before measurement. The
     * default (no regions) skips prewarming for this thread.
     */
    virtual std::vector<std::pair<Addr, std::uint64_t>>
    farRegions() const
    {
        return {};
    }
};

} // namespace critmem

#endif // CRITMEM_TRACE_GENERATOR_HH

/**
 * @file
 * Abstract interface of a per-thread micro-op stream generator.
 */

#ifndef CRITMEM_TRACE_GENERATOR_HH
#define CRITMEM_TRACE_GENERATOR_HH

#include <string>

#include "trace/microop.hh"

namespace critmem
{

/** Produces one thread's dynamic micro-op stream. */
class TraceGenerator
{
  public:
    virtual ~TraceGenerator() = default;

    /** Write the next dynamic micro-op into @p op. */
    virtual void next(MicroOp &op) = 0;

    /** @return the workload's name. */
    virtual const std::string &name() const = 0;
};

} // namespace critmem

#endif // CRITMEM_TRACE_GENERATOR_HH

/**
 * @file
 * Quickstart: simulate one parallel application under baseline
 * FR-FCFS and under the paper's MaxStallTime CASRAS-Crit scheduler,
 * and report the speedup — the paper's headline experiment in ~40
 * lines of API use.
 *
 * Usage: quickstart [app] [instructions-per-core]
 */

#include <cstdlib>
#include <iostream>

#include "sim/log.hh"
#include "system/experiment.hh"

using namespace critmem;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::string app = argc > 1 ? argv[1] : "art";
    const std::uint64_t quota =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                 : defaultQuota(40000);

    SystemConfig base = SystemConfig::parallelDefault();
    base.sched.algo = SchedAlgo::FrFcfs;
    base.crit.predictor = CritPredictor::None;

    SystemConfig crit = base;
    crit.sched.algo = SchedAlgo::CasRasCrit;
    crit.crit.predictor = CritPredictor::CbpMaxStall;
    crit.crit.tableEntries = 64;

    std::cout << "app=" << app << " quota=" << quota
              << " instructions/core, 8 cores, DDR3-2133 x4ch\n";

    const RunResult baseRun = runParallel(base, appParams(app), quota);
    std::cout << "FR-FCFS:              " << baseRun.cycles
              << " cycles\n";

    const RunResult critRun = runParallel(crit, appParams(app), quota);
    std::cout << "CASRAS-Crit/MaxStall: " << critRun.cycles
              << " cycles\n";

    std::cout << "speedup: " << speedup(baseRun, critRun) << "\n";
    std::cout << "blocking loads: " << baseRun.blockingLoads << " of "
              << baseRun.dynamicLoads << " dynamic loads; ROB head "
              << "blocked "
              << 100.0 * static_cast<double>(baseRun.robBlockedCycles) /
            static_cast<double>(baseRun.coreCycles)
              << "% of core cycles under FR-FCFS\n";
    std::cout << "critical L2 miss latency: " << critRun.l2MissLatCrit
              << " vs non-critical " << critRun.l2MissLatNonCrit
              << " CPU cycles\n";
    return 0;
}

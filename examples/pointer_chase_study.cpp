/**
 * @file
 * Domain example 1: the `art` anomaly (Sections 5.3.1 / 5.4).
 *
 * `art` implements large neural nets through two levels of
 * dynamically allocated pointers, producing back-to-back dependent
 * load misses that are exquisitely sensitive to memory reordering.
 * This example dissects how the Commit Block Predictor sees such an
 * application: which fraction of loads block the ROB head, how many
 * static PCs the 64-entry CBP must track, what the stall-time
 * distribution looks like, and how criticality scheduling moves the
 * latency of critical vs non-critical misses.
 *
 * Usage: pointer_chase_study [instructions-per-core]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/log.hh"
#include "system/experiment.hh"

using namespace critmem;

namespace
{

void
dissect(const char *label, const SystemConfig &cfg, const AppParams &app,
        std::uint64_t quota)
{
    System sys(cfg, app);
    sys.prewarmCaches();
    sys.run(quota / 2, false);
    sys.resetStatsWindow();
    sys.run(quota, true);

    std::uint64_t loads = 0, blocking = 0, blockedCycles = 0,
                  cycles = 0;
    std::uint64_t maxStall = 0, cbpEntries = 0;
    for (std::uint32_t i = 0; i < sys.numCores(); ++i) {
        const Core::Stats &cs = sys.core(i).coreStats();
        loads += cs.committedLoads.value();
        blocking += cs.blockingLoads.value();
        blockedCycles += cs.robHeadBlockedCycles.value();
        cycles += cs.cycles.value();
        maxStall = std::max(maxStall, cs.headStallLength.max());
        if (sys.core(i).cbp())
            cbpEntries += sys.core(i).cbp()->populatedEntries();
    }
    const MemHierarchy::Stats &ms = sys.hierarchy().memStats();

    std::printf("%-22s %10llu cycles | %4.1f%% loads block, %4.1f%% "
                "time | maxStall %5llu | lat crit/non %5.0f/%5.0f | "
                "CBP entries/core %4.1f\n",
                label,
                static_cast<unsigned long long>(sys.windowCycles()),
                100.0 * static_cast<double>(blocking) /
                    static_cast<double>(loads),
                100.0 * static_cast<double>(blockedCycles) /
                    static_cast<double>(cycles),
                static_cast<unsigned long long>(maxStall),
                ms.l2MissLatCrit.mean(), ms.l2MissLatNonCrit.mean(),
                static_cast<double>(cbpEntries) / sys.numCores());
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::uint64_t quota =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                 : defaultQuota(30000);

    std::printf("The art pointer-chase anomaly "
                "(quota=%llu instructions/core)\n\n",
                static_cast<unsigned long long>(quota));

    const AppParams &art = appParams("art");
    const AppParams &swim = appParams("swim"); // streaming contrast

    SystemConfig frf = SystemConfig::parallelDefault();
    frf.sched.algo = SchedAlgo::FrFcfs;
    frf.crit.predictor = CritPredictor::CbpMaxStall; // observe only

    SystemConfig crit = frf;
    crit.sched.algo = SchedAlgo::CasRasCrit;

    SystemConfig critSmall = crit;
    critSmall.crit.tableEntries = 64;
    SystemConfig critUnlimited = crit;
    critUnlimited.crit.tableEntries = 0;

    std::printf("== art: serial double-pointer dereferences ==\n");
    dissect("FR-FCFS (passive CBP)", frf, art, quota);
    dissect("CASRAS-Crit, 64-entry", critSmall, art, quota);
    dissect("CASRAS-Crit, unlimited", critUnlimited, art, quota);

    std::printf("\n== swim: streaming stencil, for contrast ==\n");
    dissect("FR-FCFS (passive CBP)", frf, swim, quota);
    dissect("CASRAS-Crit, 64-entry", critSmall, swim, quota);

    std::printf("\nReading the numbers: art concentrates its stalls in"
                " a handful of chase PCs (small CBP footprint, huge\n"
                "max stalls), so prioritizing them moves its critical"
                " miss latency sharply; swim's stalls come from\n"
                "bandwidth, not dependence chains, so criticality has"
                " far less to reorder.\n");
    return 0;
}

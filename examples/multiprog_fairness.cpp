/**
 * @file
 * Domain example 2: multiprogrammed consolidation (Section 5.8.2).
 *
 * A desktop-style bundle mixes CPU-, cache- and memory-sensitive
 * programs on a 4-core / 2-channel machine. This example computes the
 * weighted speedup and per-application slowdowns of four schedulers —
 * PAR-BS, TCM, the paper's MaxStallTime CBP and the TCM+MaxStallTime
 * hybrid — showing that processor-side criticality improves both
 * throughput *and* the worst-case slowdown in a low-contention mix.
 *
 * Usage: multiprog_fairness [bundle-name] [instructions-per-core]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/log.hh"
#include "system/experiment.hh"

using namespace critmem;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::string bundleName = argc > 1 ? argv[1] : "RFGI";
    const std::uint64_t quota =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                 : defaultQuota(20000);

    const Bundle *bundle = nullptr;
    for (const Bundle &b : multiprogBundles()) {
        if (b.name == bundleName)
            bundle = &b;
    }
    if (!bundle)
        fatal("unknown bundle '", bundleName,
              "' (see Table 4: AELV CMLI GAMV GDPC GSMV RFEV RFGI "
              "RGTM)");

    SystemConfig parbs = SystemConfig::multiprogDefault();
    parbs.sched.algo = SchedAlgo::ParBs;

    std::printf("bundle %s: %s %s %s %s  (quota=%llu/core, 4 cores, "
                "2 channels)\n\n",
                bundle->name.c_str(), bundle->apps[0].c_str(),
                bundle->apps[1].c_str(), bundle->apps[2].c_str(),
                bundle->apps[3].c_str(),
                static_cast<unsigned long long>(quota));

    // Alone-IPC baselines under the PAR-BS configuration.
    std::array<double, 4> alone{};
    for (std::size_t i = 0; i < 4; ++i) {
        alone[i] = runAlone(parbs, appParams(bundle->apps[i]), quota);
        std::printf("  %-8s alone IPC %.3f\n", bundle->apps[i].c_str(),
                    alone[i]);
    }
    std::printf("\n%-18s %9s %9s", "scheduler", "wSpeedup", "maxSlow");
    for (std::size_t i = 0; i < 4; ++i)
        std::printf(" %9s", bundle->apps[i].c_str());
    std::printf("\n");

    const RunResult base = runBundle(parbs, *bundle, quota);
    const double wsBase = weightedSpeedup(base, alone, quota);

    auto report = [&](const char *name, const SystemConfig &cfg) {
        const RunResult run = runBundle(cfg, *bundle, quota);
        std::printf("%-18s %9.4f %9.3f", name,
                    weightedSpeedup(run, alone, quota) / wsBase,
                    maxSlowdown(run, alone, quota));
        for (std::uint32_t i = 0; i < 4; ++i)
            std::printf(" %9.3f", alone[i] / run.ipc(i, quota));
        std::printf("\n");
    };

    report("PAR-BS", parbs);

    SystemConfig tcm = parbs;
    tcm.sched.algo = SchedAlgo::Tcm;
    report("TCM", tcm);

    SystemConfig crit = parbs;
    crit.sched.algo = SchedAlgo::CasRasCrit;
    crit.crit.predictor = CritPredictor::CbpMaxStall;
    crit.crit.tableEntries = 64;
    report("MaxStallTime CBP", crit);

    SystemConfig hybrid = crit;
    hybrid.sched.algo = SchedAlgo::TcmCrit;
    report("TCM+MaxStallTime", hybrid);

    std::printf("\n(wSpeedup is normalized to PAR-BS; per-app columns "
                "are slowdowns vs running alone, lower is better)\n");
    return 0;
}

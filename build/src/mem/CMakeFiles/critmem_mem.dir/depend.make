# Empty dependencies file for critmem_mem.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/critmem_mem.dir/cache.cc.o"
  "CMakeFiles/critmem_mem.dir/cache.cc.o.d"
  "CMakeFiles/critmem_mem.dir/hierarchy.cc.o"
  "CMakeFiles/critmem_mem.dir/hierarchy.cc.o.d"
  "CMakeFiles/critmem_mem.dir/prefetcher.cc.o"
  "CMakeFiles/critmem_mem.dir/prefetcher.cc.o.d"
  "libcritmem_mem.a"
  "libcritmem_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/critmem_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

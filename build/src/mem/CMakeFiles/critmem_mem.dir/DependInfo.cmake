
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/cache.cc" "src/mem/CMakeFiles/critmem_mem.dir/cache.cc.o" "gcc" "src/mem/CMakeFiles/critmem_mem.dir/cache.cc.o.d"
  "/root/repo/src/mem/hierarchy.cc" "src/mem/CMakeFiles/critmem_mem.dir/hierarchy.cc.o" "gcc" "src/mem/CMakeFiles/critmem_mem.dir/hierarchy.cc.o.d"
  "/root/repo/src/mem/prefetcher.cc" "src/mem/CMakeFiles/critmem_mem.dir/prefetcher.cc.o" "gcc" "src/mem/CMakeFiles/critmem_mem.dir/prefetcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/critmem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/critmem_dram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

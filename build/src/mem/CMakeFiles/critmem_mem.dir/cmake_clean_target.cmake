file(REMOVE_RECURSE
  "libcritmem_mem.a"
)

# Empty dependencies file for critmem_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcritmem_sim.a"
)

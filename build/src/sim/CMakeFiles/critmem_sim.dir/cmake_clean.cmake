file(REMOVE_RECURSE
  "CMakeFiles/critmem_sim.dir/config.cc.o"
  "CMakeFiles/critmem_sim.dir/config.cc.o.d"
  "CMakeFiles/critmem_sim.dir/log.cc.o"
  "CMakeFiles/critmem_sim.dir/log.cc.o.d"
  "CMakeFiles/critmem_sim.dir/stats.cc.o"
  "CMakeFiles/critmem_sim.dir/stats.cc.o.d"
  "libcritmem_sim.a"
  "libcritmem_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/critmem_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/ahb.cc" "src/sched/CMakeFiles/critmem_sched.dir/ahb.cc.o" "gcc" "src/sched/CMakeFiles/critmem_sched.dir/ahb.cc.o.d"
  "/root/repo/src/sched/atlas.cc" "src/sched/CMakeFiles/critmem_sched.dir/atlas.cc.o" "gcc" "src/sched/CMakeFiles/critmem_sched.dir/atlas.cc.o.d"
  "/root/repo/src/sched/crit_frfcfs.cc" "src/sched/CMakeFiles/critmem_sched.dir/crit_frfcfs.cc.o" "gcc" "src/sched/CMakeFiles/critmem_sched.dir/crit_frfcfs.cc.o.d"
  "/root/repo/src/sched/frfcfs.cc" "src/sched/CMakeFiles/critmem_sched.dir/frfcfs.cc.o" "gcc" "src/sched/CMakeFiles/critmem_sched.dir/frfcfs.cc.o.d"
  "/root/repo/src/sched/minimalist.cc" "src/sched/CMakeFiles/critmem_sched.dir/minimalist.cc.o" "gcc" "src/sched/CMakeFiles/critmem_sched.dir/minimalist.cc.o.d"
  "/root/repo/src/sched/morse.cc" "src/sched/CMakeFiles/critmem_sched.dir/morse.cc.o" "gcc" "src/sched/CMakeFiles/critmem_sched.dir/morse.cc.o.d"
  "/root/repo/src/sched/parbs.cc" "src/sched/CMakeFiles/critmem_sched.dir/parbs.cc.o" "gcc" "src/sched/CMakeFiles/critmem_sched.dir/parbs.cc.o.d"
  "/root/repo/src/sched/registry.cc" "src/sched/CMakeFiles/critmem_sched.dir/registry.cc.o" "gcc" "src/sched/CMakeFiles/critmem_sched.dir/registry.cc.o.d"
  "/root/repo/src/sched/tcm.cc" "src/sched/CMakeFiles/critmem_sched.dir/tcm.cc.o" "gcc" "src/sched/CMakeFiles/critmem_sched.dir/tcm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/critmem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/critmem_dram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

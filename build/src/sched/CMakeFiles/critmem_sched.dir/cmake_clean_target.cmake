file(REMOVE_RECURSE
  "libcritmem_sched.a"
)

# Empty dependencies file for critmem_sched.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/critmem_sched.dir/ahb.cc.o"
  "CMakeFiles/critmem_sched.dir/ahb.cc.o.d"
  "CMakeFiles/critmem_sched.dir/atlas.cc.o"
  "CMakeFiles/critmem_sched.dir/atlas.cc.o.d"
  "CMakeFiles/critmem_sched.dir/crit_frfcfs.cc.o"
  "CMakeFiles/critmem_sched.dir/crit_frfcfs.cc.o.d"
  "CMakeFiles/critmem_sched.dir/frfcfs.cc.o"
  "CMakeFiles/critmem_sched.dir/frfcfs.cc.o.d"
  "CMakeFiles/critmem_sched.dir/minimalist.cc.o"
  "CMakeFiles/critmem_sched.dir/minimalist.cc.o.d"
  "CMakeFiles/critmem_sched.dir/morse.cc.o"
  "CMakeFiles/critmem_sched.dir/morse.cc.o.d"
  "CMakeFiles/critmem_sched.dir/parbs.cc.o"
  "CMakeFiles/critmem_sched.dir/parbs.cc.o.d"
  "CMakeFiles/critmem_sched.dir/registry.cc.o"
  "CMakeFiles/critmem_sched.dir/registry.cc.o.d"
  "CMakeFiles/critmem_sched.dir/tcm.cc.o"
  "CMakeFiles/critmem_sched.dir/tcm.cc.o.d"
  "libcritmem_sched.a"
  "libcritmem_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/critmem_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

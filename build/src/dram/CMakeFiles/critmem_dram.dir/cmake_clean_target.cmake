file(REMOVE_RECURSE
  "libcritmem_dram.a"
)

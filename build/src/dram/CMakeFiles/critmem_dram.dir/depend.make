# Empty dependencies file for critmem_dram.
# This may be replaced when dependencies are built.

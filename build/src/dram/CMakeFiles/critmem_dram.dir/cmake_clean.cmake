file(REMOVE_RECURSE
  "CMakeFiles/critmem_dram.dir/address_map.cc.o"
  "CMakeFiles/critmem_dram.dir/address_map.cc.o.d"
  "CMakeFiles/critmem_dram.dir/channel.cc.o"
  "CMakeFiles/critmem_dram.dir/channel.cc.o.d"
  "CMakeFiles/critmem_dram.dir/dram.cc.o"
  "CMakeFiles/critmem_dram.dir/dram.cc.o.d"
  "libcritmem_dram.a"
  "libcritmem_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/critmem_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for critmem_cpu.
# This may be replaced when dependencies are built.

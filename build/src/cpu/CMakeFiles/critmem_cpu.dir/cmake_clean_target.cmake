file(REMOVE_RECURSE
  "libcritmem_cpu.a"
)

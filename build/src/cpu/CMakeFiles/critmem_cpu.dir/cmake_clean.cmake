file(REMOVE_RECURSE
  "CMakeFiles/critmem_cpu.dir/core.cc.o"
  "CMakeFiles/critmem_cpu.dir/core.cc.o.d"
  "libcritmem_cpu.a"
  "libcritmem_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/critmem_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcritmem_trace.a"
)

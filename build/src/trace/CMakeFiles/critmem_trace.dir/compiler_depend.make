# Empty compiler generated dependencies file for critmem_trace.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/critmem_trace.dir/synthetic.cc.o"
  "CMakeFiles/critmem_trace.dir/synthetic.cc.o.d"
  "CMakeFiles/critmem_trace.dir/trace_file.cc.o"
  "CMakeFiles/critmem_trace.dir/trace_file.cc.o.d"
  "CMakeFiles/critmem_trace.dir/workloads.cc.o"
  "CMakeFiles/critmem_trace.dir/workloads.cc.o.d"
  "libcritmem_trace.a"
  "libcritmem_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/critmem_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

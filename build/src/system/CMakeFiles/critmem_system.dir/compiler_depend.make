# Empty compiler generated dependencies file for critmem_system.
# This may be replaced when dependencies are built.

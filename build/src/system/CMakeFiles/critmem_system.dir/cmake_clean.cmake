file(REMOVE_RECURSE
  "CMakeFiles/critmem_system.dir/experiment.cc.o"
  "CMakeFiles/critmem_system.dir/experiment.cc.o.d"
  "CMakeFiles/critmem_system.dir/system.cc.o"
  "CMakeFiles/critmem_system.dir/system.cc.o.d"
  "libcritmem_system.a"
  "libcritmem_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/critmem_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcritmem_system.a"
)

# Empty compiler generated dependencies file for critmem_crit.
# This may be replaced when dependencies are built.

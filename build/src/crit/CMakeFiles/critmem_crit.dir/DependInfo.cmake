
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crit/cbp.cc" "src/crit/CMakeFiles/critmem_crit.dir/cbp.cc.o" "gcc" "src/crit/CMakeFiles/critmem_crit.dir/cbp.cc.o.d"
  "/root/repo/src/crit/clpt.cc" "src/crit/CMakeFiles/critmem_crit.dir/clpt.cc.o" "gcc" "src/crit/CMakeFiles/critmem_crit.dir/clpt.cc.o.d"
  "/root/repo/src/crit/overhead.cc" "src/crit/CMakeFiles/critmem_crit.dir/overhead.cc.o" "gcc" "src/crit/CMakeFiles/critmem_crit.dir/overhead.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/critmem_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

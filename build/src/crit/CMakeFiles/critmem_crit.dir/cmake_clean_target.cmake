file(REMOVE_RECURSE
  "libcritmem_crit.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/critmem_crit.dir/cbp.cc.o"
  "CMakeFiles/critmem_crit.dir/cbp.cc.o.d"
  "CMakeFiles/critmem_crit.dir/clpt.cc.o"
  "CMakeFiles/critmem_crit.dir/clpt.cc.o.d"
  "CMakeFiles/critmem_crit.dir/overhead.cc.o"
  "CMakeFiles/critmem_crit.dir/overhead.cc.o.d"
  "libcritmem_crit.a"
  "libcritmem_crit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/critmem_crit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/multiprog_fairness.dir/multiprog_fairness.cpp.o"
  "CMakeFiles/multiprog_fairness.dir/multiprog_fairness.cpp.o.d"
  "multiprog_fairness"
  "multiprog_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiprog_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for multiprog_fairness.
# This may be replaced when dependencies are built.

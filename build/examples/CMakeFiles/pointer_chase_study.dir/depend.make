# Empty dependencies file for pointer_chase_study.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/morse_sweep.dir/__/tools/morse_sweep.cpp.o"
  "CMakeFiles/morse_sweep.dir/__/tools/morse_sweep.cpp.o.d"
  "morse_sweep"
  "morse_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morse_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for morse_sweep.
# This may be replaced when dependencies are built.

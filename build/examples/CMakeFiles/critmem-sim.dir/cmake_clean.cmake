file(REMOVE_RECURSE
  "CMakeFiles/critmem-sim.dir/__/tools/critmem_cli.cpp.o"
  "CMakeFiles/critmem-sim.dir/__/tools/critmem_cli.cpp.o.d"
  "critmem-sim"
  "critmem-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/critmem-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

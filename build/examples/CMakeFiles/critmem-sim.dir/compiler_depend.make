# Empty compiler generated dependencies file for critmem-sim.
# This may be replaced when dependencies are built.

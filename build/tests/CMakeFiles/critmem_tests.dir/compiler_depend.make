# Empty compiler generated dependencies file for critmem_tests.
# This may be replaced when dependencies are built.

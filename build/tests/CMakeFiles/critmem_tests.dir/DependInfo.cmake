
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_address_map.cc" "tests/CMakeFiles/critmem_tests.dir/test_address_map.cc.o" "gcc" "tests/CMakeFiles/critmem_tests.dir/test_address_map.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/critmem_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/critmem_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_cbp.cc" "tests/CMakeFiles/critmem_tests.dir/test_cbp.cc.o" "gcc" "tests/CMakeFiles/critmem_tests.dir/test_cbp.cc.o.d"
  "/root/repo/tests/test_clpt_overhead.cc" "tests/CMakeFiles/critmem_tests.dir/test_clpt_overhead.cc.o" "gcc" "tests/CMakeFiles/critmem_tests.dir/test_clpt_overhead.cc.o.d"
  "/root/repo/tests/test_config.cc" "tests/CMakeFiles/critmem_tests.dir/test_config.cc.o" "gcc" "tests/CMakeFiles/critmem_tests.dir/test_config.cc.o.d"
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/critmem_tests.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/critmem_tests.dir/test_core.cc.o.d"
  "/root/repo/tests/test_dram.cc" "tests/CMakeFiles/critmem_tests.dir/test_dram.cc.o" "gcc" "tests/CMakeFiles/critmem_tests.dir/test_dram.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/critmem_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/critmem_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_hierarchy.cc" "tests/CMakeFiles/critmem_tests.dir/test_hierarchy.cc.o" "gcc" "tests/CMakeFiles/critmem_tests.dir/test_hierarchy.cc.o.d"
  "/root/repo/tests/test_papershape.cc" "tests/CMakeFiles/critmem_tests.dir/test_papershape.cc.o" "gcc" "tests/CMakeFiles/critmem_tests.dir/test_papershape.cc.o.d"
  "/root/repo/tests/test_prefetcher.cc" "tests/CMakeFiles/critmem_tests.dir/test_prefetcher.cc.o" "gcc" "tests/CMakeFiles/critmem_tests.dir/test_prefetcher.cc.o.d"
  "/root/repo/tests/test_random.cc" "tests/CMakeFiles/critmem_tests.dir/test_random.cc.o" "gcc" "tests/CMakeFiles/critmem_tests.dir/test_random.cc.o.d"
  "/root/repo/tests/test_sched.cc" "tests/CMakeFiles/critmem_tests.dir/test_sched.cc.o" "gcc" "tests/CMakeFiles/critmem_tests.dir/test_sched.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/critmem_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/critmem_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_system.cc" "tests/CMakeFiles/critmem_tests.dir/test_system.cc.o" "gcc" "tests/CMakeFiles/critmem_tests.dir/test_system.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/critmem_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/critmem_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_workload_properties.cc" "tests/CMakeFiles/critmem_tests.dir/test_workload_properties.cc.o" "gcc" "tests/CMakeFiles/critmem_tests.dir/test_workload_properties.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/system/CMakeFiles/critmem_system.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/critmem_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/critmem_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/critmem_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/critmem_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/critmem_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/crit/CMakeFiles/critmem_crit.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/critmem_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bench_sec532_reset.dir/bench_sec532_reset.cpp.o"
  "CMakeFiles/bench_sec532_reset.dir/bench_sec532_reset.cpp.o.d"
  "bench_sec532_reset"
  "bench_sec532_reset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec532_reset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_sec532_reset.
# This may be replaced when dependencies are built.

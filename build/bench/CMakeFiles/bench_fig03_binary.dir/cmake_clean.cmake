file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_binary.dir/bench_fig03_binary.cpp.o"
  "CMakeFiles/bench_fig03_binary.dir/bench_fig03_binary.cpp.o.d"
  "bench_fig03_binary"
  "bench_fig03_binary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_binary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

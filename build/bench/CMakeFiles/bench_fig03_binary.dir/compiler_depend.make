# Empty compiler generated dependencies file for bench_fig03_binary.
# This may be replaced when dependencies are built.

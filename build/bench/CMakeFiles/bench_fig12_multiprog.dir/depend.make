# Empty dependencies file for bench_fig12_multiprog.
# This may be replaced when dependencies are built.

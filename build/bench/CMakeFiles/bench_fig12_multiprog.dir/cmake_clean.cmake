file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_multiprog.dir/bench_fig12_multiprog.cpp.o"
  "CMakeFiles/bench_fig12_multiprog.dir/bench_fig12_multiprog.cpp.o.d"
  "bench_fig12_multiprog"
  "bench_fig12_multiprog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_multiprog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

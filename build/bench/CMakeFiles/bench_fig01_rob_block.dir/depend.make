# Empty dependencies file for bench_fig01_rob_block.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_rob_block.dir/bench_fig01_rob_block.cpp.o"
  "CMakeFiles/bench_fig01_rob_block.dir/bench_fig01_rob_block.cpp.o.d"
  "bench_fig01_rob_block"
  "bench_fig01_rob_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_rob_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_sec51_naive.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_sec51_naive.dir/bench_sec51_naive.cpp.o"
  "CMakeFiles/bench_sec51_naive.dir/bench_sec51_naive.cpp.o.d"
  "bench_sec51_naive"
  "bench_sec51_naive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec51_naive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

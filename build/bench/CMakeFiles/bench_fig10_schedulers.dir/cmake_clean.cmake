file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_schedulers.dir/bench_fig10_schedulers.cpp.o"
  "CMakeFiles/bench_fig10_schedulers.dir/bench_fig10_schedulers.cpp.o.d"
  "bench_fig10_schedulers"
  "bench_fig10_schedulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

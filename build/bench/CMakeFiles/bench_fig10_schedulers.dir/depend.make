# Empty dependencies file for bench_fig10_schedulers.
# This may be replaced when dependencies are built.

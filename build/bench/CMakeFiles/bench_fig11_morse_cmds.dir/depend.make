# Empty dependencies file for bench_fig11_morse_cmds.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_morse_cmds.dir/bench_fig11_morse_cmds.cpp.o"
  "CMakeFiles/bench_fig11_morse_cmds.dir/bench_fig11_morse_cmds.cpp.o.d"
  "bench_fig11_morse_cmds"
  "bench_fig11_morse_cmds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_morse_cmds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

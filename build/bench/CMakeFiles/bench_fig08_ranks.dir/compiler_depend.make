# Empty compiler generated dependencies file for bench_fig08_ranks.
# This may be replaced when dependencies are built.

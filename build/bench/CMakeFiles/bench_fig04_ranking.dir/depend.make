# Empty dependencies file for bench_fig04_ranking.
# This may be replaced when dependencies are built.

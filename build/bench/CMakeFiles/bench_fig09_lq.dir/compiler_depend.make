# Empty compiler generated dependencies file for bench_fig09_lq.
# This may be replaced when dependencies are built.

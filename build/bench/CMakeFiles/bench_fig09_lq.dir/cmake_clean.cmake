file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_lq.dir/bench_fig09_lq.cpp.o"
  "CMakeFiles/bench_fig09_lq.dir/bench_fig09_lq.cpp.o.d"
  "bench_fig09_lq"
  "bench_fig09_lq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_lq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

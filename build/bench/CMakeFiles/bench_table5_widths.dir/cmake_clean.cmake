file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_widths.dir/bench_table5_widths.cpp.o"
  "CMakeFiles/bench_table5_widths.dir/bench_table5_widths.cpp.o.d"
  "bench_table5_widths"
  "bench_table5_widths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_widths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

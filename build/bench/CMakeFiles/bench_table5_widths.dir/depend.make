# Empty dependencies file for bench_table5_widths.
# This may be replaced when dependencies are built.

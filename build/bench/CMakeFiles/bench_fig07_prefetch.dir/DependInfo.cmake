
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig07_prefetch.cpp" "bench/CMakeFiles/bench_fig07_prefetch.dir/bench_fig07_prefetch.cpp.o" "gcc" "bench/CMakeFiles/bench_fig07_prefetch.dir/bench_fig07_prefetch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/system/CMakeFiles/critmem_system.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/critmem_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/critmem_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/critmem_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/critmem_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/critmem_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/crit/CMakeFiles/critmem_crit.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/critmem_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for bench_ext_cbp.
# This may be replaced when dependencies are built.

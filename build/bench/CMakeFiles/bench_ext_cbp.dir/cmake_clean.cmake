file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_cbp.dir/bench_ext_cbp.cpp.o"
  "CMakeFiles/bench_ext_cbp.dir/bench_ext_cbp.cpp.o.d"
  "bench_ext_cbp"
  "bench_ext_cbp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_cbp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

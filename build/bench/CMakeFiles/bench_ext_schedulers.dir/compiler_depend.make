# Empty compiler generated dependencies file for bench_ext_schedulers.
# This may be replaced when dependencies are built.

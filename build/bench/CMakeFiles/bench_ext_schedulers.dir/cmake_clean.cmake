file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_schedulers.dir/bench_ext_schedulers.cpp.o"
  "CMakeFiles/bench_ext_schedulers.dir/bench_ext_schedulers.cpp.o.d"
  "bench_ext_schedulers"
  "bench_ext_schedulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

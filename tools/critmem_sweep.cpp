/**
 * @file
 * critmem-sweep: the unified campaign driver over src/exec/.
 *
 * Expands a declarative sweep spec into a job list, executes it on
 * the work-stealing JobRunner, streams structured results to JSONL /
 * CSV sinks, and can post-process a speedup table straight from the
 * in-memory records:
 *
 *   critmem-sweep --spec specs/fig10.sweep --jobs $(nproc) \
 *                 --out fig10.jsonl --progress --report speedup:base
 *
 * Results are bit-identical for any --jobs value; the wall clock is
 * the only thing that changes.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "exec/job_runner.hh"
#include "exec/sweep.hh"
#include "exec/table.hh"
#include "sim/log.hh"

using namespace critmem;

namespace
{

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: critmem-sweep --spec FILE [options]\n"
        "  --spec FILE        sweep specification (see specs/)\n"
        "  --jobs N           worker threads (default: all cores)\n"
        "  --retries N        extra attempts per failed job"
        " (default 1)\n"
        "  --out FILE         write one JSON object per job (JSONL);"
        " '-' = stdout\n"
        "  --csv FILE         write a flat CSV table; '-' = stdout\n"
        "  --stats            embed each job's full stats tree in the"
        " JSONL records\n"
        "  --progress         live [done/total] throughput/ETA line on"
        " stderr\n"
        "  --quota N          override the spec's per-core quota\n"
        "  --seed N           override the spec's campaign seed\n"
        "  --check            attach the protocol checker to every"
        " job\n"
        "  --report speedup:BASE\n"
        "                     after the run, print per-workload cycle\n"
        "                     speedups of every variant relative to\n"
        "                     variant BASE (figure-bench layout)\n"
        "  --list             print the expanded job list and exit\n"
        "exit status: 0 all jobs ok, 2 some jobs failed permanently\n");
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string specPath;
    std::string outPath;
    std::string csvPath;
    std::string report;
    exec::RunnerOptions opts;
    opts.maxAttempts = 2;
    bool listOnly = false;
    bool forceCheck = false;
    bool captureStats = false;
    std::uint64_t quotaOverride = 0;
    std::uint64_t seedOverride = 0;
    bool seedSet = false;

    auto nextArg = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--spec") {
            specPath = nextArg(i);
        } else if (arg == "--jobs") {
            opts.threads =
                static_cast<unsigned>(std::atoi(nextArg(i)));
        } else if (arg == "--retries") {
            opts.maxAttempts =
                1 + static_cast<unsigned>(std::atoi(nextArg(i)));
        } else if (arg == "--out") {
            outPath = nextArg(i);
        } else if (arg == "--csv") {
            csvPath = nextArg(i);
        } else if (arg == "--stats") {
            captureStats = true;
        } else if (arg == "--progress") {
            opts.progress = true;
        } else if (arg == "--quota") {
            quotaOverride = std::strtoull(nextArg(i), nullptr, 10);
        } else if (arg == "--seed") {
            seedOverride = std::strtoull(nextArg(i), nullptr, 10);
            seedSet = true;
        } else if (arg == "--check") {
            forceCheck = true;
        } else if (arg == "--report") {
            report = nextArg(i);
        } else if (arg == "--list") {
            listOnly = true;
        } else {
            usage();
        }
    }
    if (specPath.empty())
        usage();

    setQuiet(true);

    exec::SweepSpec spec;
    std::vector<exec::JobSpec> jobs;
    try {
        spec = exec::parseSweepFile(specPath);
        if (quotaOverride)
            spec.quota = quotaOverride;
        if (seedSet)
            spec.campaignSeed = seedOverride;
        if (forceCheck)
            spec.check = true;
        if (captureStats)
            spec.captureStats = true;
        jobs = spec.expand();
    } catch (const std::exception &err) {
        std::fprintf(stderr, "critmem-sweep: %s\n", err.what());
        return 1;
    }

    if (listOnly) {
        for (const exec::JobSpec &job : jobs)
            std::printf("%s\n", job.name.c_str());
        return 0;
    }

    // Assemble the sink stack. The memory sink always runs so that
    // post-run reports can query results without re-parsing files.
    exec::MemorySink memory;
    std::vector<exec::ResultSink *> sinks{&memory};

    std::ofstream outFile;
    std::unique_ptr<exec::JsonlSink> jsonl;
    if (!outPath.empty()) {
        std::ostream *os = &std::cout;
        if (outPath != "-") {
            outFile.open(outPath);
            if (!outFile)
                fatal("cannot open --out file '", outPath, "'");
            os = &outFile;
        }
        jsonl = std::make_unique<exec::JsonlSink>(*os);
        sinks.push_back(jsonl.get());
    }

    std::ofstream csvFile;
    std::unique_ptr<exec::CsvSink> csv;
    if (!csvPath.empty()) {
        std::ostream *os = &std::cout;
        if (csvPath != "-") {
            csvFile.open(csvPath);
            if (!csvFile)
                fatal("cannot open --csv file '", csvPath, "'");
            os = &csvFile;
        }
        csv = std::make_unique<exec::CsvSink>(*os);
        sinks.push_back(csv.get());
    }

    exec::JobRunner runner(opts);
    const exec::CampaignSummary summary = runner.run(jobs, sinks);

    std::fprintf(stderr,
                 "campaign: %zu jobs, %zu ok, %zu failed, %zu "
                 "retries, %.1fs wall (%.2f jobs/s)\n",
                 summary.total, summary.ok, summary.failed,
                 summary.retries, summary.wallMs / 1000.0,
                 summary.wallMs > 0.0
                     ? summary.total * 1000.0 / summary.wallMs
                     : 0.0);
    for (const exec::JobRecord &rec : memory.records()) {
        if (!rec.ok()) {
            std::fprintf(stderr, "failed: %s [%s] %s\n  repro: %s\n",
                         rec.spec.name.c_str(), toString(rec.status),
                         rec.error.c_str(),
                         exec::reproCommand(rec.spec).c_str());
        }
    }

    if (report.rfind("speedup:", 0) == 0) {
        const std::string baseVariant = report.substr(8);
        std::vector<std::string> columns;
        for (const exec::SweepVariant &variant : spec.variants) {
            if (variant.name != baseVariant)
                columns.push_back(variant.name);
        }
        std::printf("# speedup vs %s (quota=%llu/core)\n",
                    baseVariant.c_str(),
                    static_cast<unsigned long long>(spec.quota));
        exec::printHeader(columns);
        exec::Averager avg;
        for (const exec::JobRecord &rec : memory.records()) {
            // One row per workload, keyed off its base-variant job.
            const auto tag = rec.spec.tags.find("variant");
            if (tag == rec.spec.tags.end() ||
                tag->second != baseVariant || !rec.ok())
                continue;
            const std::string &workload = rec.spec.workload;
            std::vector<double> row;
            bool complete = true;
            for (const std::string &col : columns) {
                const exec::JobRecord *other =
                    memory.find(workload + "/" + col);
                if (!other || !other->ok()) {
                    complete = false;
                    break;
                }
                row.push_back(
                    static_cast<double>(rec.result.cycles) /
                    static_cast<double>(other->result.cycles));
            }
            if (!complete)
                continue;
            exec::printRow(workload, row);
            avg.add(row);
        }
        exec::printRow("Average", avg.average());
    }

    return summary.failed == 0 ? 0 : 2;
}

/**
 * @file
 * critmem-sweep: the unified campaign driver over src/exec/.
 *
 * Expands a declarative sweep spec into a job list, executes it on
 * the work-stealing JobRunner, streams structured results to JSONL /
 * CSV sinks, and can post-process a speedup table straight from the
 * in-memory records:
 *
 *   critmem-sweep --spec specs/fig10.sweep --jobs $(nproc) \
 *                 --out fig10.jsonl --progress --report speedup:base
 *
 * Results are bit-identical for any --jobs value; the wall clock is
 * the only thing that changes.
 *
 * Crash safety: with --campaign DIR every completed job is fsync'd
 * into DIR/journal.txt, and after a crash / SIGKILL / graceful ^C
 * `critmem-sweep --resume DIR` re-runs only the missing jobs and
 * regenerates outputs byte-identical to an uninterrupted run. Result
 * files (--out/--csv) are written via temp+rename, so readers see
 * either the old file or the complete new one, never a torn write.
 */

#include <array>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "exec/arena.hh"
#include "exec/campaign.hh"
#include "exec/console.hh"
#include "exec/job_runner.hh"
#include "exec/sweep.hh"
#include "exec/table.hh"
#include "exec/worker.hh"
#include "sim/atomic_file.hh"
#include "sim/log.hh"

using namespace critmem;

namespace
{

/**
 * Graceful-shutdown state. The first SIGINT/SIGTERM requests a
 * drain (stop dispatch, finish in-flight jobs, flush the journal and
 * sinks, print a --resume hint); a second signal aborts immediately.
 */
std::atomic<int> gStop{0};

extern "C" void
onStopSignal(int)
{
    if (gStop.fetch_add(1) != 0) {
        // Hard abort: take any outstanding isolated workers down with
        // the supervisor so a double ^C never leaks orphan processes
        // still burning CPU against the terminal. Async-signal-safe.
        exec::killWorkerGroups();
        std::_Exit(130);
    }
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: critmem-sweep --spec FILE [options]\n"
        "       critmem-sweep --resume DIR [options]\n"
        "  --spec FILE        sweep specification (see specs/)\n"
        "  --jobs N           worker threads (default: all cores)\n"
        "  --retries N        extra attempts per failed job"
        " (default 1)\n"
        "  --out FILE         write one JSON object per job (JSONL);"
        " '-' = stdout\n"
        "  --csv FILE         write a flat CSV table; '-' = stdout\n"
        "  --stats            embed each job's full stats tree in the"
        " JSONL records\n"
        "  --progress         live [done/total] throughput/ETA line on"
        " stderr\n"
        "  --quota N          override the spec's per-core quota\n"
        "  --seed N           override the spec's campaign seed\n"
        "  --check            attach the protocol checker to every"
        " job\n"
        "  --timeout SEC      per-job wall-clock limit; over-budget"
        " jobs are\n"
        "                     cancelled and recorded as"
        " status=timeout\n"
        "  --isolate          run each job in a forked worker process:"
        " a crash,\n"
        "                     runaway allocation or wedge is contained"
        " to that\n"
        "                     job (status=crashed/oom/timeout/exit)"
        " and the\n"
        "                     campaign keeps going; result files stay\n"
        "                     byte-identical to in-process execution\n"
        "  --job-mem-mb N     per-job address-space budget in MiB"
        " (RLIMIT_AS\n"
        "                     inside the worker; needs --isolate)\n"
        "  --max-failures N[%%]\n"
        "                     circuit breaker: abort dispatch once N"
        " jobs (or\n"
        "                     N%% of the campaign) have failed"
        " permanently;\n"
        "                     resumable with --resume once fixed\n"
        "  --campaign DIR     checkpoint into DIR: an atomic manifest"
        " plus a\n"
        "                     per-record fsync'd completion journal\n"
        "  --resume DIR       resume an interrupted --campaign run:"
        " re-expands\n"
        "                     the spec, verifies the manifest hash,"
        " replays\n"
        "                     journaled jobs and runs only the rest\n"
        "  --report speedup:BASE\n"
        "                     after the run, print per-workload cycle\n"
        "                     speedups of every variant relative to\n"
        "                     variant BASE (figure-bench layout)\n"
        "  --report arena     after the run, print the scheduler\n"
        "                     leaderboard: per-workload rankings and\n"
        "                     the overall table by the fairness\n"
        "                     metrics (needs alone=1 bundle sweeps,\n"
        "                     e.g. specs/arena.sweep)\n"
        "  --report failures  after the run, print the failure"
        " summary table\n"
        "                     (status x variant x workload) plus a"
        " repro line\n"
        "                     per permanently failed job\n"
        "  --list             print the expanded job list and exit\n"
        "exit status: 0 all jobs ok, 2 some jobs failed permanently,\n"
        "             3 interrupted by SIGINT/SIGTERM (resumable with"
        " --resume)\n");
    std::exit(1);
}

std::string
boolValue(bool b)
{
    return b ? "1" : "0";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string specPath;
    std::string outPath;
    std::string csvPath;
    std::string report;
    std::string campaignDir;
    bool resume = false;
    exec::RunnerOptions opts;
    opts.maxAttempts = 2;
    bool listOnly = false;
    bool forceCheck = false;
    bool captureStats = false;
    std::uint64_t quotaOverride = 0;
    std::uint64_t seedOverride = 0;
    bool seedSet = false;

    auto nextArg = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--spec") {
            specPath = nextArg(i);
        } else if (arg == "--jobs") {
            opts.threads =
                static_cast<unsigned>(std::atoi(nextArg(i)));
        } else if (arg == "--retries") {
            opts.maxAttempts =
                1 + static_cast<unsigned>(std::atoi(nextArg(i)));
        } else if (arg == "--out") {
            outPath = nextArg(i);
        } else if (arg == "--csv") {
            csvPath = nextArg(i);
        } else if (arg == "--stats") {
            captureStats = true;
        } else if (arg == "--progress") {
            opts.progress = true;
        } else if (arg == "--quota") {
            quotaOverride = std::strtoull(nextArg(i), nullptr, 10);
        } else if (arg == "--seed") {
            seedOverride = std::strtoull(nextArg(i), nullptr, 10);
            seedSet = true;
        } else if (arg == "--check") {
            forceCheck = true;
        } else if (arg == "--timeout") {
            opts.jobTimeoutMs = 1000 *
                std::strtoull(nextArg(i), nullptr, 10);
        } else if (arg == "--isolate") {
            opts.isolate = true;
        } else if (arg == "--job-mem-mb") {
            opts.jobMemMb = std::strtoull(nextArg(i), nullptr, 10);
        } else if (arg == "--max-failures") {
            const std::string value = nextArg(i);
            if (!value.empty() && value.back() == '%')
                opts.maxFailuresPct =
                    static_cast<unsigned>(std::atoi(value.c_str()));
            else
                opts.maxFailures = static_cast<std::size_t>(
                    std::strtoull(value.c_str(), nullptr, 10));
        } else if (arg == "--campaign") {
            campaignDir = nextArg(i);
        } else if (arg == "--resume") {
            campaignDir = nextArg(i);
            resume = true;
        } else if (arg == "--report") {
            report = nextArg(i);
        } else if (arg == "--list") {
            listOnly = true;
        } else {
            usage();
        }
    }
    if (specPath.empty() && !resume)
        usage();

    setQuiet(true);
    exec::Console &console = exec::Console::instance();

    exec::SweepSpec spec;
    std::vector<exec::JobSpec> jobs;
    std::unique_ptr<exec::CampaignJournal> journal;
    try {
        if (resume) {
            // Everything that shapes the job list comes from the
            // manifest, so a plain `--resume DIR` reproduces the
            // original campaign exactly; only execution knobs
            // (--jobs, --timeout, --progress, ...) stay CLI-driven.
            const exec::Manifest manifest =
                exec::loadManifest(exec::manifestPath(campaignDir));
            const std::string *field = manifest.find("spec");
            if (field == nullptr)
                throw exec::CampaignError(
                    "campaign manifest is missing key 'spec'", 0);
            specPath = *field;
            spec = exec::parseSweepFile(specPath);
            if ((field = manifest.find("quota")) != nullptr)
                spec.quota =
                    std::strtoull(field->c_str(), nullptr, 10);
            if ((field = manifest.find("seed")) != nullptr)
                spec.campaignSeed =
                    std::strtoull(field->c_str(), nullptr, 10);
            if ((field = manifest.find("check")) != nullptr)
                spec.check = *field == "1" || spec.check;
            if ((field = manifest.find("stats")) != nullptr)
                spec.captureStats = *field == "1" || spec.captureStats;
            if ((field = manifest.find("out")) != nullptr)
                outPath = *field;
            if ((field = manifest.find("csv")) != nullptr)
                csvPath = *field;
            jobs = spec.expand();
            // The spec file may have been edited since the campaign
            // started; refuse to mix journaled results with a job
            // list they no longer belong to.
            manifest.expectValue(
                "spec-hash",
                exec::hashHex(exec::campaignHash(jobs)));
            manifest.expectValue("jobs",
                                 std::to_string(jobs.size()));
        } else {
            spec = exec::parseSweepFile(specPath);
            if (quotaOverride)
                spec.quota = quotaOverride;
            if (seedSet)
                spec.campaignSeed = seedOverride;
            if (forceCheck)
                spec.check = true;
            if (captureStats)
                spec.captureStats = true;
            jobs = spec.expand();
        }
    } catch (const std::exception &err) {
        std::fprintf(stderr, "critmem-sweep: %s\n", err.what());
        return 1;
    }

    if (listOnly) {
        for (const exec::JobSpec &job : jobs)
            std::printf("%s\n", job.name.c_str());
        return 0;
    }

    try {
        if (resume) {
            journal = exec::CampaignJournal::resume(
                exec::journalPath(campaignDir));
            journal->attach(jobs);
            if (journal->tornTailTruncated())
                console.line("journal: truncated a torn trailing "
                             "record (crash artifact)");
        } else if (!campaignDir.empty()) {
            if (::mkdir(campaignDir.c_str(), 0777) != 0 &&
                errno != EEXIST) {
                fatal("cannot create campaign directory '",
                      campaignDir, "'");
            }
            exec::writeManifest(
                exec::manifestPath(campaignDir),
                {{"spec", specPath},
                 {"spec-hash",
                  exec::hashHex(exec::campaignHash(jobs))},
                 {"jobs", std::to_string(jobs.size())},
                 {"quota", std::to_string(spec.quota)},
                 {"seed", std::to_string(spec.campaignSeed)},
                 {"check", boolValue(spec.check)},
                 {"stats", boolValue(spec.captureStats)},
                 {"out", outPath},
                 {"csv", csvPath}});
            journal = exec::CampaignJournal::create(
                exec::journalPath(campaignDir));
        }
    } catch (const std::exception &err) {
        std::fprintf(stderr, "critmem-sweep: %s\n", err.what());
        return 1;
    }

    // Assemble the sink stack. The memory sink always runs so that
    // post-run reports can query results without re-parsing files.
    // File-backed sinks write through AtomicFile (temp + fsync +
    // rename): a reader of the target path sees the previous file or
    // the complete new one, never a partial write.
    exec::MemorySink memory;
    std::vector<exec::ResultSink *> sinks{&memory};

    std::unique_ptr<AtomicFile> outFile;
    std::unique_ptr<exec::JsonlSink> jsonl;
    if (!outPath.empty()) {
        std::ostream *os = &std::cout;
        if (outPath != "-") {
            outFile = std::make_unique<AtomicFile>(outPath);
            os = &outFile->stream();
        }
        jsonl = std::make_unique<exec::JsonlSink>(*os);
        sinks.push_back(jsonl.get());
    }

    std::unique_ptr<AtomicFile> csvFile;
    std::unique_ptr<exec::CsvSink> csv;
    if (!csvPath.empty()) {
        std::ostream *os = &std::cout;
        if (csvPath != "-") {
            csvFile = std::make_unique<AtomicFile>(csvPath);
            os = &csvFile->stream();
        }
        csv = std::make_unique<exec::CsvSink>(*os);
        sinks.push_back(csv.get());
    }

    // First signal drains gracefully, second hard-aborts; see
    // onStopSignal.
    opts.stopRequested = &gStop;
    std::signal(SIGINT, onStopSignal);
    std::signal(SIGTERM, onStopSignal);

    // Retries pause on a deterministic jittered exponential backoff
    // keyed to the campaign seed, so transient environmental noise
    // (the only thing a retry can fix) gets time to clear.
    opts.backoffBaseMs = 200;
    opts.backoffSeed = spec.campaignSeed;

    // Fairness annotation runs on the aggregation thread in
    // submission order, so every Bundle record is decorated after the
    // alone-run baselines it needs (sweep expansion puts those first).
    exec::FairnessAnnotator annotator;
    opts.annotate = [&annotator](exec::JobRecord &rec) {
        annotator(rec);
    };

    exec::JobRunner runner(opts);
    const exec::CampaignSummary summary =
        runner.run(jobs, sinks, journal.get());

    // An interrupted campaign still commits its outputs: they hold a
    // clean submission-order prefix of the records, and a --resume
    // rewrites them in full.
    try {
        if (outFile)
            outFile->commit();
        if (csvFile)
            csvFile->commit();
    } catch (const std::exception &err) {
        std::fprintf(stderr, "critmem-sweep: %s\n", err.what());
        return 1;
    }

    char buffer[256];
    std::snprintf(buffer, sizeof(buffer),
                  "campaign: %zu jobs, %zu ok, %zu failed, %zu "
                  "replayed, %zu retries, %.1fs wall (%.2f jobs/s)",
                  summary.total, summary.ok, summary.failed,
                  summary.replayed, summary.retries,
                  summary.wallMs / 1000.0,
                  summary.wallMs > 0.0
                      ? summary.total * 1000.0 / summary.wallMs
                      : 0.0);
    console.line(buffer);
    if (summary.respawned != 0)
        console.line("respawned: " +
                     std::to_string(summary.respawned) +
                     " worker(s) killed externally and re-dispatched");
    for (const exec::JobRecord &rec : memory.records()) {
        if (!rec.ok()) {
            console.line("failed: " + rec.spec.name + " [" +
                         toString(rec.status) + "] after " +
                         std::to_string(rec.attempts) +
                         " attempt(s): " + rec.error +
                         "\n  repro: " + exec::reproCommand(rec.spec));
        }
    }

    if (summary.breakerTripped)
        console.line("circuit breaker: the --max-failures threshold "
                     "was reached; dispatch was aborted");

    if (summary.interrupted) {
        console.line(
            "interrupted: " + std::to_string(summary.pending) +
            " job(s) not completed");
        if (!campaignDir.empty()) {
            console.line("resume with: critmem-sweep --resume " +
                         campaignDir);
        } else {
            console.line("(no --campaign directory: completed work "
                         "was not checkpointed)");
        }
        return 3;
    }

    if (report == "arena") {
        exec::printArenaReport(spec, memory);
    } else if (report == "failures") {
        // Deterministic for any --jobs: memory.records() is in
        // submission order and the map sorts the summary cells, so
        // two runs of the same campaign print identical bytes.
        std::map<std::array<std::string, 3>, std::size_t> cells;
        std::size_t failures = 0;
        for (const exec::JobRecord &rec : memory.records()) {
            if (rec.ok())
                continue;
            ++failures;
            const auto tag = rec.spec.tags.find("variant");
            ++cells[{toString(rec.status),
                     tag != rec.spec.tags.end() ? tag->second : "-",
                     rec.spec.workload}];
        }
        if (failures == 0) {
            std::printf("# failures: none\n");
        } else {
            std::printf("# failures: %zu of %zu job(s)\n", failures,
                        summary.total);
            std::printf("%-10s %-14s %-16s %s\n", "status",
                        "variant", "workload", "count");
            for (const auto &cell : cells)
                std::printf("%-10s %-14s %-16s %zu\n",
                            cell.first[0].c_str(),
                            cell.first[1].c_str(),
                            cell.first[2].c_str(), cell.second);
            std::printf("# repro\n");
            for (const exec::JobRecord &rec : memory.records()) {
                if (!rec.ok())
                    std::printf(
                        "%s\n", exec::reproCommand(rec.spec).c_str());
            }
        }
    } else if (report.rfind("speedup:", 0) == 0) {
        const std::string baseVariant = report.substr(8);
        std::vector<std::string> columns;
        for (const exec::SweepVariant &variant : spec.variants) {
            if (variant.name != baseVariant)
                columns.push_back(variant.name);
        }
        std::printf("# speedup vs %s (quota=%llu/core)\n",
                    baseVariant.c_str(),
                    static_cast<unsigned long long>(spec.quota));
        exec::printHeader(columns);
        exec::Averager avg;
        for (const exec::JobRecord &rec : memory.records()) {
            // One row per workload, keyed off its base-variant job.
            const auto tag = rec.spec.tags.find("variant");
            if (tag == rec.spec.tags.end() ||
                tag->second != baseVariant || !rec.ok())
                continue;
            const std::string &workload = rec.spec.workload;
            std::vector<double> row;
            bool complete = true;
            for (const std::string &col : columns) {
                const exec::JobRecord *other =
                    memory.find(workload + "/" + col);
                if (!other || !other->ok()) {
                    complete = false;
                    break;
                }
                row.push_back(
                    static_cast<double>(rec.result.cycles) /
                    static_cast<double>(other->result.cycles));
            }
            if (!complete)
                continue;
            exec::printRow(workload, row);
            avg.add(row);
        }
        exec::printRow("Average", avg.average());
    }

    return summary.failed == 0 ? 0 : 2;
}

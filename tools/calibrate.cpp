#include <cstdio>
#include <cstdlib>
#include "sim/log.hh"
#include "system/experiment.hh"
using namespace critmem;

static double occ(const SystemConfig& cfg, const AppParams& app, std::uint64_t quota, double* util, double* lat) {
    System sys(cfg, app);
    sys.run(quota, true);
    double o = 0, l = 0; std::uint64_t cyc = 0, busy = 0, n = 0;
    for (std::uint32_t c = 0; c < sys.dram().numChannels(); ++c) {
        const auto& ds = sys.dram().channel(c).channelStats();
        o += ds.readQueueOcc.mean();
        busy += ds.busyDataCycles.value();
        cyc = ds.readQueueOcc.count();
        l += ds.readLatency.mean(); n++;
    }
    *util = 100.0 * busy / (double)(cyc * sys.dram().numChannels());
    *lat = l / n;
    return o / n;
}

int main(int argc, char** argv) {
    setQuiet(true);
    const std::uint64_t quota = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
    std::printf("%-10s %6s %7s %7s %7s %6s %6s %7s %7s %7s %7s %8s %8s %8s\n",
                "app", "IPC", "%ldBlk", "%tBlk", "L2mpki", "qOcc", "util%", "rdLat", "spBin", "spMax", "spCrit1", "latCrit", "latNon", "%crMiss");
    for (const AppParams& app : parallelApps()) {
        SystemConfig base = SystemConfig::parallelDefault();
        base.sched.algo = SchedAlgo::FrFcfs;
        RunResult b = runParallel(base, app, quota);
        double util=0, lat=0;
        double qocc = occ(base, app, quota, &util, &lat);

        SystemConfig cbin = base;
        cbin.sched.algo = SchedAlgo::CasRasCrit;
        cbin.crit.predictor = CritPredictor::CbpBinary;
        RunResult rbin = runParallel(cbin, app, quota);

        SystemConfig cmax = cbin;
        cmax.crit.predictor = CritPredictor::CbpMaxStall;
        RunResult rmax = runParallel(cmax, app, quota);

        SystemConfig c1 = cmax;
        c1.sched.algo = SchedAlgo::CritCasRas;
        RunResult r1 = runParallel(c1, app, quota);

        const double ipc = (double)(quota * base.numCores) / b.cycles;
        std::printf("%-10s %6.3f %7.2f %7.2f %7.2f %6.2f %6.1f %7.1f %7.3f %7.3f %7.3f %8.1f %8.1f %8.2f\n",
            app.name.c_str(), ipc,
            100.0 * b.blockingLoads / (double)b.dynamicLoads,
            100.0 * b.robBlockedCycles / (double)b.coreCycles,
            1000.0 * b.demandMisses / (double)(quota * base.numCores),
            qocc, util, lat,
            speedup(b, rbin), speedup(b, rmax), speedup(b, r1),
            rmax.l2MissLatCrit, rmax.l2MissLatNonCrit,
            100.0 * rmax.critMissCount / (double)(rmax.critMissCount + rmax.nonCritMissCount));
    }
    return 0;
}

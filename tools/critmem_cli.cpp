/**
 * @file
 * critmem-sim: command-line front end for single simulations.
 *
 * Runs one workload / configuration and prints either a summary line
 * or the full statistics tree — the "drive anything without writing
 * C++" entry point for downstream users.
 *
 *   critmem-sim --app art --sched casras-crit --predictor maxstall \
 *               --instrs 50000 --stats
 *   critmem-sim --bundle RFGI --sched parbs --instrs 20000
 *   critmem-sim --app swim --ranks 1 --speed ddr3-1600 --prefetch
 *   critmem-sim --app mg --alone --stats-json mg.json
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "fair/baseline_cache.hh"
#include "fair/fairness_stats.hh"
#include "sched/registry.hh"
#include "sim/log.hh"
#include "sim/stats.hh"
#include "system/experiment.hh"
#include "trace/workloads.hh"

using namespace critmem;

namespace
{

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: critmem-sim [options]\n"
        "  --app NAME         parallel application (see"
        " --list-workloads)\n"
        "  --bundle NAME      Table 4 bundle instead (AELV CMLI GAMV"
        " GDPC GSMV RFEV RFGI RGTM)\n"
        "  --trace [NAME=]PATH\n"
        "                     register an external trace file as a\n"
        "                     workload (repeatable; default name is\n"
        "                     the file stem); with no --app it is also\n"
        "                     the workload to run\n"
        "  --trace-format F   auto (default) | text | binary\n"
        "  --trace-policy P   fail (default) | skip-record |"
        " truncate\n"
        "  --trace-skip-budget N\n"
        "                     damaged records tolerated per pass under"
        " skip-record (default 64)\n"
        "  --alone            run --app on core 0 with the other cores"
        " idle\n"
        "  --fairness         (with --bundle) also run each bundle app\n"
        "                     alone, derive weighted/harmonic speedup,\n"
        "                     max slowdown and unfairness, and attach\n"
        "                     them as the 'fair' stats group\n"
        "  --preset NAME      base config: parallel (default) |"
        " multiprog\n"
        "  --sched NAME       scheduling algorithm (default frfcfs;"
        " see --list-schedulers)\n"
        "  --predictor NAME   criticality predictor (default none;"
        " see --list-schedulers)\n"
        "  --entries N        CBP/CLPT entries, 0 = unlimited"
        " (default 64)\n"
        "  --reset N          CBP reset interval, CPU cycles"
        " (default 0)\n"
        "  --instrs N         commit quota per core (default 24000)\n"
        "  --warmup N         warmup instructions (default half)\n"
        "  --seed N           simulation seed (default 1)\n"
        "  --ranks N          ranks per channel (default 4)\n"
        "  --channels N       DRAM channels (default 4; bundles 2)\n"
        "  --speed NAME       ddr3-1066 | ddr3-1600 | ddr3-2133\n"
        "  --lq N             load queue entries (default 32)\n"
        "  --prefetch         enable the L2 stream prefetcher\n"
        "  --closed-page      closed-page row policy\n"
        "  --split-wq         modern split write buffer\n"
        "  --stats            dump the full statistics tree\n"
        "  --stats-json FILE  write the stats tree as JSON;"
        " '-' = stdout\n"
        "  --perf             add a host-dependent 'perf' stats group\n"
        "                     (wall ms, cycles/sec, DRAM cmds/sec);\n"
        "                     also via CRITMEM_PERF=1. Off by default\n"
        "                     so stats output stays deterministic\n"
        "  --no-cycle-skip    force the tick-every-cycle loop (results\n"
        "                     are identical either way; this only\n"
        "                     changes simulator speed)\n"
        "  --cycle-skip       re-enable event-driven cycle skipping\n"
        "  --list-workloads   print every registered workload and"
        " exit\n"
        "  --list-schedulers  print schedulers and predictors and"
        " exit\n"
        "  --quiet            suppress informational logging\n"
        "  --check            enable the DRAM protocol invariant\n"
        "                     checker and forward-progress watchdog\n"
        "                     (exit 2 on violation)\n"
        "  --inject KIND      inject faults (implies --check):\n"
        "                     drop-completion | early-cas |"
        " skip-refresh |\n"
        "                     starve-core | flip-crit |"
        " crash-worker |\n"
        "                     hog-memory (the last two fault the"
        " process\n"
        "                     itself — for critmem-sweep --isolate"
        " drills)\n"
        "  --inject-period N  mean opportunities between faults"
        " (default 64)\n");
    std::exit(1);
}

void
listWorkloads()
{
    std::printf("parallel applications (--app):\n");
    for (const AppParams &app : parallelApps())
        std::printf("  %s\n", app.name.c_str());
    std::printf("single-threaded applications (--app, bundles):\n");
    for (const AppParams &app : singleApps())
        std::printf("  %s\n", app.name.c_str());
    std::printf("multiprogrammed bundles (--bundle):\n");
    for (const Bundle &bundle : multiprogBundles()) {
        std::printf("  %-5s = %s + %s + %s + %s\n",
                    bundle.name.c_str(), bundle.apps[0].c_str(),
                    bundle.apps[1].c_str(), bundle.apps[2].c_str(),
                    bundle.apps[3].c_str());
    }
    if (!traceWorkloads().empty()) {
        std::printf("trace-backed workloads (--trace / --app):\n");
        for (const TraceWorkload &wl : traceWorkloads()) {
            std::printf("  %-12s %s  (%u cores, %llu records",
                        wl.name.c_str(), wl.path.c_str(), wl.numCores,
                        static_cast<unsigned long long>(wl.records));
            if (wl.dropped != 0) {
                std::printf(", %llu dropped",
                            static_cast<unsigned long long>(
                                wl.dropped));
            }
            std::printf(")\n");
        }
    }
}

void
listSchedulers()
{
    // Column widths track the registry so long scheduler names
    // (dyn-thresh-crit, ...) never squeeze the description off-grid.
    int cliWidth = 0;
    int displayWidth = 0;
    for (const SchedInfo &info : schedulerRegistry()) {
        cliWidth = std::max(cliWidth,
                            static_cast<int>(std::strlen(info.cliName)));
        displayWidth = std::max(
            displayWidth,
            static_cast<int>(std::strlen(info.displayName)));
    }
    std::printf("schedulers (--sched):\n");
    for (const SchedInfo &info : schedulerRegistry()) {
        std::printf("  %-*s %-*s %s\n", cliWidth, info.cliName,
                    displayWidth, info.displayName, info.desc);
    }
    std::printf("criticality predictors (--predictor):\n");
    for (const PredictorInfo &info : predictorRegistry())
        std::printf("  %-14s %s\n", info.cliName, info.desc);
}

} // namespace

int
main(int argc, char **argv)
{
    // The preset decides the base config every other flag overrides,
    // so resolve it before the main flag pass.
    bool multiprogPreset = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--preset") == 0 && i + 1 < argc)
            multiprogPreset =
                std::strcmp(argv[i + 1], "multiprog") == 0;
    }

    std::string app;
    std::string bundleName;
    std::string statsJsonPath;
    SystemConfig cfg = multiprogPreset
        ? SystemConfig::multiprogDefault()
        : SystemConfig::parallelDefault();
    std::uint64_t instrs = 24000;
    std::uint64_t warmup = ~std::uint64_t{0};
    bool dumpStats = false;
    const char *perfEnv = std::getenv("CRITMEM_PERF");
    bool perfStats = perfEnv != nullptr && perfEnv[0] == '1';
    bool alone = false;
    bool fairness = false;
    bool speedSet = false;
    DramSpeed speed = DramSpeed::DDR3_2133;
    // Trace sources register after the flag pass so the recovery
    // flags apply no matter where they appear on the command line,
    // and so --list-workloads can include them.
    std::vector<std::pair<std::string, std::string>> traceArgs;
    ingest::IngestOptions traceOpts;
    bool doListWorkloads = false;
    bool doListSchedulers = false;

    auto nextArg = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--app") {
            app = nextArg(i);
        } else if (arg == "--bundle") {
            bundleName = nextArg(i);
        } else if (arg == "--trace") {
            const std::string spec = nextArg(i);
            const std::size_t eq = spec.find('=');
            std::string name;
            std::string path;
            if (eq != std::string::npos) {
                name = spec.substr(0, eq);
                path = spec.substr(eq + 1);
            } else {
                path = spec;
                const std::size_t slash = path.find_last_of('/');
                name = slash == std::string::npos
                    ? path
                    : path.substr(slash + 1);
                const std::size_t dot = name.find('.');
                if (dot != std::string::npos)
                    name = name.substr(0, dot);
            }
            if (name.empty() || path.empty())
                fatal("--trace needs [NAME=]PATH, got '", spec, "'");
            traceArgs.emplace_back(name, path);
        } else if (arg == "--trace-format") {
            const std::string name = nextArg(i);
            if (!ingest::findTraceFormat(name, traceOpts.format))
                fatal("unknown trace format '", name, "'");
        } else if (arg == "--trace-policy") {
            const std::string name = nextArg(i);
            if (!ingest::findRecoveryPolicy(name, traceOpts.policy))
                fatal("unknown trace recovery policy '", name, "'");
        } else if (arg == "--trace-skip-budget") {
            traceOpts.skipBudget = std::strtoull(nextArg(i), nullptr,
                                                 10);
        } else if (arg == "--alone") {
            alone = true;
        } else if (arg == "--fairness") {
            fairness = true;
        } else if (arg == "--preset") {
            const std::string preset = nextArg(i);
            if (preset != "parallel" && preset != "multiprog")
                fatal("unknown preset '", preset, "'");
        } else if (arg == "--sched") {
            const std::string name = nextArg(i);
            const auto algo = findSchedAlgo(name);
            if (!algo)
                fatal("unknown scheduler '", name, "'");
            cfg.sched.algo = *algo;
        } else if (arg == "--predictor") {
            const std::string name = nextArg(i);
            const auto pred = findCritPredictor(name);
            if (!pred)
                fatal("unknown predictor '", name, "'");
            cfg.crit.predictor = *pred;
        } else if (arg == "--entries") {
            cfg.crit.tableEntries =
                static_cast<std::uint32_t>(std::atoll(nextArg(i)));
        } else if (arg == "--reset") {
            cfg.crit.resetInterval = std::strtoull(nextArg(i), nullptr,
                                                   10);
        } else if (arg == "--instrs") {
            instrs = std::strtoull(nextArg(i), nullptr, 10);
        } else if (arg == "--warmup") {
            warmup = std::strtoull(nextArg(i), nullptr, 10);
        } else if (arg == "--seed") {
            cfg.seed = std::strtoull(nextArg(i), nullptr, 10);
        } else if (arg == "--ranks") {
            cfg.dram.ranksPerChannel =
                static_cast<std::uint32_t>(std::atoi(nextArg(i)));
        } else if (arg == "--channels") {
            cfg.dram.channels =
                static_cast<std::uint32_t>(std::atoi(nextArg(i)));
        } else if (arg == "--speed") {
            const std::string name = nextArg(i);
            const auto grade = findDramSpeed(name);
            if (!grade)
                fatal("unknown speed grade '", name, "'");
            speed = *grade;
            speedSet = true;
        } else if (arg == "--lq") {
            cfg.core.lqEntries =
                static_cast<std::uint32_t>(std::atoi(nextArg(i)));
        } else if (arg == "--prefetch") {
            cfg.prefetch.enabled = true;
        } else if (arg == "--closed-page") {
            cfg.dram.closedPage = true;
        } else if (arg == "--split-wq") {
            cfg.dram.unifiedQueue = false;
        } else if (arg == "--perf") {
            perfStats = true;
        } else if (arg == "--no-cycle-skip") {
            cfg.fastForward = false;
        } else if (arg == "--cycle-skip") {
            cfg.fastForward = true;
        } else if (arg == "--stats") {
            dumpStats = true;
        } else if (arg == "--stats-json") {
            statsJsonPath = nextArg(i);
        } else if (arg == "--list-workloads") {
            doListWorkloads = true;
        } else if (arg == "--list-schedulers") {
            doListSchedulers = true;
        } else if (arg == "--check") {
            cfg.check.enabled = true;
        } else if (arg == "--inject") {
            const std::string name = nextArg(i);
            const auto fault = findFaultKind(name);
            if (!fault)
                fatal("unknown fault kind '", name, "'");
            cfg.check.enabled = true;
            cfg.check.fault = *fault;
        } else if (arg == "--inject-period") {
            cfg.check.faultPeriod = std::strtoull(nextArg(i), nullptr,
                                                  10);
        } else if (arg == "--quiet") {
            setQuiet(true);
        } else {
            usage();
        }
    }
    // Register trace sources before anything that can consult the
    // registry (the listings below, workload resolution).
    for (const auto &[name, path] : traceArgs) {
        try {
            registerTraceWorkload(name, path, traceOpts);
        } catch (const std::exception &err) {
            fatal("cannot register trace '", name, "': ", err.what());
        }
    }
    if (doListWorkloads || doListSchedulers) {
        if (doListWorkloads)
            listWorkloads();
        if (doListSchedulers)
            listSchedulers();
        return 0;
    }
    // A lone --trace with neither --app nor --bundle is itself the
    // workload to run.
    if (app.empty() && bundleName.empty() && traceArgs.size() == 1)
        app = traceArgs[0].first;
    if (app.empty() == bundleName.empty())
        usage(); // exactly one of --app / --bundle / a lone --trace
    if (alone && app.empty())
        fatal("--alone requires --app");
    if (fairness && bundleName.empty())
        fatal("--fairness requires --bundle");

    if (speedSet) {
        const DramConfig fresh = DramConfig::preset(speed);
        cfg.dram.t = fresh.t;
        cfg.dram.busMHz = fresh.busMHz;
        cfg.dram.speed = speed;
    }
    if (warmup == ~std::uint64_t{0})
        warmup = instrs / 2;

    validateOrFatal(cfg);

    std::unique_ptr<System> sys;
    if (!app.empty()) {
        if (const TraceWorkload *wl = findTraceWorkload(app)) {
            if (alone)
                fatal("--alone does not apply to trace workloads");
            // The trace file dictates the core count.
            cfg.numCores = wl->numCores;
            sys = std::make_unique<System>(cfg, *wl);
        } else if (!haveApp(app)) {
            fatal("unknown application '", app, "'");
        } else if (alone) {
            std::vector<AppParams> perCore(cfg.numCores);
            perCore[0] = appParams(app);
            sys = std::make_unique<System>(cfg, perCore);
        } else {
            sys = std::make_unique<System>(cfg, appParams(app));
        }
    } else {
        const Bundle *bundle = findBundle(bundleName);
        if (!bundle)
            fatal("unknown bundle '", bundleName, "'");
        cfg.numCores = 4;
        std::vector<AppParams> perCore;
        for (const std::string &name : bundle->apps)
            perCore.push_back(appParams(name));
        sys = std::make_unique<System>(cfg, perCore);
    }

    double wallMs = 0.0;
    try {
        sys->prewarmCaches();
        if (warmup > 0) {
            sys->run(warmup, /*stopAtQuota=*/false);
            sys->resetStatsWindow();
        }
        // lint:allow(wall-clock): host throughput measurement for the
        // opt-in --perf group; never feeds simulated behaviour.
        const auto wallStart = std::chrono::steady_clock::now();
        sys->run(instrs,
                 /*stopAtQuota=*/!bundleName.empty() ? false : true);
        // lint:allow(wall-clock): see above.
        const auto wallEnd = std::chrono::steady_clock::now();
        wallMs = std::chrono::duration<double, std::milli>(
                     wallEnd - wallStart)
                     .count();
        // Requests still queued at the quota are in flight, not lost.
        sys->finalizeChecks(/*requireDrained=*/false);
    } catch (const CheckViolation &err) {
        std::fprintf(stderr, "CHECK FAILED: %s\n", err.what());
        if (sys->checker())
            std::fputs(sys->checker()->report().c_str(), stderr);
        return 2;
    }
    if (sys->checker()) {
        if (sys->checker()->totalViolations() != 0) {
            std::fputs(sys->checker()->report().c_str(), stderr);
            return 2;
        }
        std::fprintf(stderr, "checker: 0 violations%s\n",
                     cfg.check.fault != FaultKind::None
                         ? " (fault injection armed but never fired)"
                         : "");
    }

    const RunResult r = collect(*sys);
    // An alone run only commits on core 0; everything else reports
    // whole-machine throughput.
    const double ipc = alone
        ? static_cast<double>(instrs) /
              static_cast<double>(r.finishCycles[0])
        : static_cast<double>(instrs) * cfg.numCores /
              static_cast<double>(r.cycles);
    std::printf("workload=%s sched=%s predictor=%s cycles=%llu "
                "ipc=%.4f\n",
                app.empty() ? bundleName.c_str() : app.c_str(),
                toString(cfg.sched.algo), toString(cfg.crit.predictor),
                static_cast<unsigned long long>(r.cycles), ipc);
    std::printf("loads=%llu blocking=%llu (%.2f%%) robBlocked=%.2f%% "
                "l2missLat crit/non = %.1f / %.1f\n",
                static_cast<unsigned long long>(r.dynamicLoads),
                static_cast<unsigned long long>(r.blockingLoads),
                100.0 * static_cast<double>(r.blockingLoads) /
                    static_cast<double>(std::max<std::uint64_t>(
                        r.dynamicLoads, 1)),
                100.0 * static_cast<double>(r.robBlockedCycles) /
                    static_cast<double>(
                        std::max<std::uint64_t>(r.coreCycles, 1)),
                r.l2MissLatCrit, r.l2MissLatNonCrit);

    // --fairness: run each bundle app alone (deduped through the
    // baseline cache, so a bundle with repeated apps runs each
    // baseline once), derive the fairness metrics against the shared
    // run, and attach them to the stats tree before either dump.
    std::optional<fair::FairnessStats> fairStats;
    if (fairness) {
        const Bundle &bundle = *findBundle(bundleName);
        fair::AloneBaselineCache baselines;
        std::vector<double> aloneIpc;
        aloneIpc.reserve(bundle.apps.size());
        for (const std::string &name : bundle.apps) {
            aloneIpc.push_back(baselines.getOrCompute(
                name, cfg, instrs, [&] {
                    return runAlone(cfg, appParams(name), instrs);
                }));
        }
        const fair::FairnessMetrics m = fair::computeFairness(
            fair::sharedIpcs(r, instrs, cfg.numCores), aloneIpc);
        fairStats.emplace(&sys->statsRoot(), cfg.numCores);
        fairStats->set(m);
        if (m.valid) {
            std::printf("fair: ws=%.4f hs=%.4f maxslow=%.4f "
                        "unfair=%.4f (%llu alone runs)\n",
                        m.weightedSpeedup, m.harmonicSpeedup,
                        m.maxSlowdown, m.unfairness,
                        static_cast<unsigned long long>(
                            baselines.runsExecuted()));
        } else {
            std::printf(
                "fair: invalid (a core never reached its quota)\n");
        }
    }

    // Host-throughput group, opt-in (--perf / CRITMEM_PERF=1): these
    // values are wall-clock-dependent, so keeping them out of the
    // default output preserves the byte-identical stats-json
    // determinism contract. Lives here so it outlasts both dumps.
    struct PerfGroup
    {
        PerfGroup(stats::Group &parent)
            : group("perf", &parent),
              wallMs(group, "wallMs",
                     "host milliseconds for the measured run"),
              cyclesPerSec(group, "cyclesPerSec",
                           "simulated CPU cycles per host second"),
              dramCmdsPerSec(group, "dramCmdsPerSec",
                             "DRAM commands issued per host second")
        {
        }

        stats::Group group;
        stats::Scalar wallMs;
        stats::Scalar cyclesPerSec;
        stats::Scalar dramCmdsPerSec;
    };
    std::optional<PerfGroup> perf;
    if (perfStats) {
        std::uint64_t dramCmds = 0;
        for (std::uint32_t c = 0; c < sys->dram().numChannels(); ++c) {
            const auto &ch = sys->dram().channel(c).channelStats();
            dramCmds += ch.activates.value() + ch.reads.value() +
                        ch.writes.value() + ch.precharges.value() +
                        ch.refreshes.value();
        }
        const double wallSec = std::max(wallMs, 1e-6) / 1000.0;
        perf.emplace(sys->statsRoot());
        perf->wallMs.set(static_cast<std::uint64_t>(
            std::llround(wallMs)));
        perf->cyclesPerSec.set(static_cast<std::uint64_t>(
            static_cast<double>(r.cycles) / wallSec));
        perf->dramCmdsPerSec.set(static_cast<std::uint64_t>(
            static_cast<double>(dramCmds) / wallSec));
        std::fprintf(stderr,
                     "perf: wall=%.1fms cycles/s=%.3g dramCmds/s=%.3g\n",
                     wallMs, static_cast<double>(r.cycles) / wallSec,
                     static_cast<double>(dramCmds) / wallSec);
    }

    if (dumpStats)
        sys->statsRoot().print(std::cout);
    if (!statsJsonPath.empty()) {
        if (statsJsonPath == "-") {
            sys->statsRoot().printJson(std::cout);
            std::cout << '\n';
        } else {
            // Atomic temp+fsync+rename write: a crash mid-dump never
            // leaves a truncated JSON file at the target path.
            try {
                stats::writeJsonFile(statsJsonPath, sys->statsRoot());
            } catch (const std::exception &err) {
                fatal("cannot write --stats-json file '",
                      statsJsonPath, "': ", err.what());
            }
        }
    }
    return 0;
}

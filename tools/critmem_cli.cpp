/**
 * @file
 * critmem-sim: command-line front end for single simulations.
 *
 * Runs one workload / configuration and prints either a summary line
 * or the full statistics tree — the "drive anything without writing
 * C++" entry point for downstream users.
 *
 *   critmem-sim --app art --sched casras-crit --predictor maxstall \
 *               --instrs 50000 --stats
 *   critmem-sim --bundle RFGI --sched parbs --instrs 20000
 *   critmem-sim --app swim --ranks 1 --speed ddr3-1600 --prefetch
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "sim/log.hh"
#include "system/experiment.hh"

using namespace critmem;

namespace
{

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: critmem-sim [options]\n"
        "  --app NAME         parallel application (art cg equake fft"
        " mg ocean radix scalparc swim)\n"
        "  --bundle NAME      Table 4 bundle instead (AELV CMLI GAMV"
        " GDPC GSMV RFEV RFGI RGTM)\n"
        "  --sched NAME       fcfs | frfcfs | crit-casras |"
        " casras-crit | parbs | tcm | tcm-crit |\n"
        "                     ahb | morse | crit-rl | atlas |"
        " minimalist (default frfcfs)\n"
        "  --predictor NAME   none | naive | binary | blockcount |"
        " laststall | maxstall |\n"
        "                     totalstall | clpt-binary |"
        " clpt-consumers (default none)\n"
        "  --entries N        CBP/CLPT entries, 0 = unlimited"
        " (default 64)\n"
        "  --reset N          CBP reset interval, CPU cycles"
        " (default 0)\n"
        "  --instrs N         commit quota per core (default 24000)\n"
        "  --warmup N         warmup instructions (default half)\n"
        "  --seed N           simulation seed (default 1)\n"
        "  --ranks N          ranks per channel (default 4)\n"
        "  --channels N       DRAM channels (default 4; bundles 2)\n"
        "  --speed NAME       ddr3-1066 | ddr3-1600 | ddr3-2133\n"
        "  --lq N             load queue entries (default 32)\n"
        "  --prefetch         enable the L2 stream prefetcher\n"
        "  --closed-page      closed-page row policy\n"
        "  --split-wq         modern split write buffer\n"
        "  --stats            dump the full statistics tree\n"
        "  --quiet            suppress informational logging\n"
        "  --check            enable the DRAM protocol invariant\n"
        "                     checker and forward-progress watchdog\n"
        "                     (exit 2 on violation)\n"
        "  --inject KIND      inject faults (implies --check):\n"
        "                     drop-completion | early-cas |"
        " skip-refresh |\n"
        "                     starve-core | flip-crit\n"
        "  --inject-period N  mean opportunities between faults"
        " (default 64)\n");
    std::exit(1);
}

FaultKind
parseFault(const std::string &name)
{
    if (name == "drop-completion") return FaultKind::DropCompletion;
    if (name == "early-cas") return FaultKind::EarlyCas;
    if (name == "skip-refresh") return FaultKind::SkipRefresh;
    if (name == "starve-core") return FaultKind::StarveCore;
    if (name == "flip-crit") return FaultKind::FlipCrit;
    fatal("unknown fault kind '", name, "'");
}

SchedAlgo
parseSched(const std::string &name)
{
    if (name == "fcfs") return SchedAlgo::Fcfs;
    if (name == "frfcfs") return SchedAlgo::FrFcfs;
    if (name == "crit-casras") return SchedAlgo::CritCasRas;
    if (name == "casras-crit") return SchedAlgo::CasRasCrit;
    if (name == "parbs") return SchedAlgo::ParBs;
    if (name == "tcm") return SchedAlgo::Tcm;
    if (name == "tcm-crit") return SchedAlgo::TcmCrit;
    if (name == "ahb") return SchedAlgo::Ahb;
    if (name == "morse") return SchedAlgo::Morse;
    if (name == "crit-rl") return SchedAlgo::CritRl;
    if (name == "atlas") return SchedAlgo::Atlas;
    if (name == "minimalist") return SchedAlgo::Minimalist;
    fatal("unknown scheduler '", name, "'");
}

CritPredictor
parsePredictor(const std::string &name)
{
    if (name == "none") return CritPredictor::None;
    if (name == "naive") return CritPredictor::NaiveForward;
    if (name == "binary") return CritPredictor::CbpBinary;
    if (name == "blockcount") return CritPredictor::CbpBlockCount;
    if (name == "laststall") return CritPredictor::CbpLastStall;
    if (name == "maxstall") return CritPredictor::CbpMaxStall;
    if (name == "totalstall") return CritPredictor::CbpTotalStall;
    if (name == "clpt-binary") return CritPredictor::ClptBinary;
    if (name == "clpt-consumers") return CritPredictor::ClptConsumers;
    fatal("unknown predictor '", name, "'");
}

DramSpeed
parseSpeed(const std::string &name)
{
    if (name == "ddr3-1066") return DramSpeed::DDR3_1066;
    if (name == "ddr3-1600") return DramSpeed::DDR3_1600;
    if (name == "ddr3-2133") return DramSpeed::DDR3_2133;
    fatal("unknown speed grade '", name, "'");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string app;
    std::string bundleName;
    SystemConfig cfg = SystemConfig::parallelDefault();
    std::uint64_t instrs = 24000;
    std::uint64_t warmup = ~std::uint64_t{0};
    bool dumpStats = false;
    bool speedSet = false;
    DramSpeed speed = DramSpeed::DDR3_2133;

    auto nextArg = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--app") {
            app = nextArg(i);
        } else if (arg == "--bundle") {
            bundleName = nextArg(i);
        } else if (arg == "--sched") {
            cfg.sched.algo = parseSched(nextArg(i));
        } else if (arg == "--predictor") {
            cfg.crit.predictor = parsePredictor(nextArg(i));
        } else if (arg == "--entries") {
            cfg.crit.tableEntries =
                static_cast<std::uint32_t>(std::atoll(nextArg(i)));
        } else if (arg == "--reset") {
            cfg.crit.resetInterval = std::strtoull(nextArg(i), nullptr,
                                                   10);
        } else if (arg == "--instrs") {
            instrs = std::strtoull(nextArg(i), nullptr, 10);
        } else if (arg == "--warmup") {
            warmup = std::strtoull(nextArg(i), nullptr, 10);
        } else if (arg == "--seed") {
            cfg.seed = std::strtoull(nextArg(i), nullptr, 10);
        } else if (arg == "--ranks") {
            cfg.dram.ranksPerChannel =
                static_cast<std::uint32_t>(std::atoi(nextArg(i)));
        } else if (arg == "--channels") {
            cfg.dram.channels =
                static_cast<std::uint32_t>(std::atoi(nextArg(i)));
        } else if (arg == "--speed") {
            speed = parseSpeed(nextArg(i));
            speedSet = true;
        } else if (arg == "--lq") {
            cfg.core.lqEntries =
                static_cast<std::uint32_t>(std::atoi(nextArg(i)));
        } else if (arg == "--prefetch") {
            cfg.prefetch.enabled = true;
        } else if (arg == "--closed-page") {
            cfg.dram.closedPage = true;
        } else if (arg == "--split-wq") {
            cfg.dram.unifiedQueue = false;
        } else if (arg == "--stats") {
            dumpStats = true;
        } else if (arg == "--check") {
            cfg.check.enabled = true;
        } else if (arg == "--inject") {
            cfg.check.enabled = true;
            cfg.check.fault = parseFault(nextArg(i));
        } else if (arg == "--inject-period") {
            cfg.check.faultPeriod = std::strtoull(nextArg(i), nullptr,
                                                  10);
        } else if (arg == "--quiet") {
            setQuiet(true);
        } else {
            usage();
        }
    }
    if (app.empty() == bundleName.empty())
        usage(); // exactly one of --app / --bundle

    if (speedSet) {
        const DramConfig fresh = DramConfig::preset(speed);
        cfg.dram.t = fresh.t;
        cfg.dram.busMHz = fresh.busMHz;
        cfg.dram.speed = speed;
    }
    if (warmup == ~std::uint64_t{0})
        warmup = instrs / 2;

    validateOrFatal(cfg);

    std::unique_ptr<System> sys;
    if (!app.empty()) {
        sys = std::make_unique<System>(cfg, appParams(app));
    } else {
        const Bundle *bundle = nullptr;
        for (const Bundle &b : multiprogBundles()) {
            if (b.name == bundleName)
                bundle = &b;
        }
        if (!bundle)
            fatal("unknown bundle '", bundleName, "'");
        cfg.numCores = 4;
        std::vector<AppParams> perCore;
        for (const std::string &name : bundle->apps)
            perCore.push_back(appParams(name));
        sys = std::make_unique<System>(cfg, perCore);
    }

    try {
        sys->prewarmCaches();
        if (warmup > 0) {
            sys->run(warmup, /*stopAtQuota=*/false);
            sys->resetStatsWindow();
        }
        sys->run(instrs,
                 /*stopAtQuota=*/!bundleName.empty() ? false : true);
        // Requests still queued at the quota are in flight, not lost.
        sys->finalizeChecks(/*requireDrained=*/false);
    } catch (const CheckViolation &err) {
        std::fprintf(stderr, "CHECK FAILED: %s\n", err.what());
        if (sys->checker())
            std::fputs(sys->checker()->report().c_str(), stderr);
        return 2;
    }
    if (sys->checker()) {
        if (sys->checker()->totalViolations() != 0) {
            std::fputs(sys->checker()->report().c_str(), stderr);
            return 2;
        }
        std::fprintf(stderr, "checker: 0 violations%s\n",
                     cfg.check.fault != FaultKind::None
                         ? " (fault injection armed but never fired)"
                         : "");
    }

    const RunResult r = collect(*sys);
    std::printf("workload=%s sched=%s predictor=%s cycles=%llu "
                "ipc=%.4f\n",
                app.empty() ? bundleName.c_str() : app.c_str(),
                toString(cfg.sched.algo), toString(cfg.crit.predictor),
                static_cast<unsigned long long>(r.cycles),
                static_cast<double>(instrs) * cfg.numCores /
                    static_cast<double>(r.cycles));
    std::printf("loads=%llu blocking=%llu (%.2f%%) robBlocked=%.2f%% "
                "l2missLat crit/non = %.1f / %.1f\n",
                static_cast<unsigned long long>(r.dynamicLoads),
                static_cast<unsigned long long>(r.blockingLoads),
                100.0 * static_cast<double>(r.blockingLoads) /
                    static_cast<double>(std::max<std::uint64_t>(
                        r.dynamicLoads, 1)),
                100.0 * static_cast<double>(r.robBlockedCycles) /
                    static_cast<double>(
                        std::max<std::uint64_t>(r.coreCycles, 1)),
                r.l2MissLatCrit, r.l2MissLatNonCrit);

    if (dumpStats)
        sys->statsRoot().print(std::cout);
    return 0;
}

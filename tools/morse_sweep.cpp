#include <cstdio>
#include "sim/log.hh"
#include "system/experiment.hh"
#include "sched/morse.hh"
using namespace critmem;
static RunResult runMorse(const SystemConfig& cfg, const AppParams& app,
                          std::uint64_t q, float a, float g, float e) {
    // build manually to control params
    struct Holder { MorseScheduler s; Holder(const SystemConfig& c, float a, float g, float e)
        : s(c.dram.channels, c.dram.banksPerRank, c.sched.morseMaxCommands, false, c.seed, a, g, e) {} };
    Holder h(cfg, a, g, e);
    // Can't inject scheduler into System; replicate runParallel
    // manually — which also means System's constructor never sees
    // this config, so validate it here before assembling components.
    validateOrFatal(cfg);
    stats::Group root("sys");
    DramSystem dram(cfg.dram, h.s, root);
    MemHierarchy hier(cfg, dram, root);
    std::vector<std::unique_ptr<SyntheticApp>> gens;
    std::vector<std::unique_ptr<Core>> cores;
    for (std::uint32_t i = 0; i < cfg.numCores; ++i) {
        gens.push_back(std::make_unique<SyntheticApp>(app, i, cfg.numCores, 0, cfg.seed));
        cores.push_back(std::make_unique<Core>(cfg, i, *gens.back(), hier, root));
    }
    // prewarm
    {
        Rng rng(cfg.seed ^ 0x77a12f5ull);
        std::vector<std::pair<Addr,std::uint64_t>> regions;
        for (auto& g2 : gens) for (auto& r : g2->farRegions()) regions.push_back(r);
        const std::uint64_t lines = (std::uint64_t)(0.9 * cfg.l2.sizeBytes / cfg.l2.blockBytes);
        for (std::uint64_t n = 0; n < lines; ++n) {
            auto& [base, size] = regions[rng.below(regions.size())];
            hier.l2().insert(hier.l2().blockAlign(base + rng.below(size)),
                             rng.chance(0.12) ? LineState::Modified : LineState::Exclusive);
        }
    }
    Cycle cyc = 0;
    std::uint64_t acc = 0;
    DramCycle dc = 0;
    auto tick = [&] {
        ++cyc; hier.tick(cyc);
        for (auto& c2 : cores) c2->tick(cyc);
        acc += cfg.dram.busMHz;
        if (acc >= cfg.core.freqMHz) { acc -= cfg.core.freqMHz; dram.tick(++dc); }
    };
    auto allDone = [&] { for (auto& c2 : cores) if (!c2->finished()) return false; return true; };
    for (auto& c2 : cores) { c2->setQuota(q/2); c2->setStopAtQuota(false); }
    while (!allDone()) tick();
    root.resetAll();
    for (auto& c2 : cores) c2->resetWindow();
    Cycle start = cyc;
    for (auto& c2 : cores) { c2->setQuota(q); c2->setStopAtQuota(true); }
    while (!allDone()) tick();
    RunResult r; r.cycles = cyc - start;
    return r;
}
int main() {
    setQuiet(true);
    const std::uint64_t q = 24000;
    const char* apps[] = {"art","mg","radix"};
    // baselines
    double base[3];
    for (int i = 0; i < 3; ++i) {
        SystemConfig cfg = SystemConfig::parallelDefault();
        base[i] = (double)runParallel(cfg, appParams(apps[i]), q).cycles;
    }
    struct P { float a, g, e; };
    for (P p : {P{0.1f,0.95f,0.02f}, P{0.3f,0.95f,0.02f}, P{0.1f,0.8f,0.02f},
                P{0.3f,0.8f,0.05f}, P{0.05f,0.98f,0.01f}, P{0.2f,0.9f,0.03f}}) {
        double s = 0;
        for (int i = 0; i < 3; ++i) {
            SystemConfig cfg = SystemConfig::parallelDefault();
            RunResult r = runMorse(cfg, appParams(apps[i]), q, p.a, p.g, p.e);
            s += base[i] / (double)r.cycles;
        }
        std::printf("alpha=%.2f gamma=%.2f eps=%.2f avgSp=%.4f\n", p.a, p.g, p.e, s/3);
    }
    return 0;
}

/**
 * @file
 * critmem-tracefuzz: deterministic structured fuzzing of the trace
 * ingestion frontend.
 *
 * Loads a seed corpus of valid traces, applies seeded structured
 * mutations (bit flips, byte sets, zero-fill, truncations,
 * extensions, field splices, header lies), and feeds every mutant to
 * the decoder, asserting the contract the rest of the tree relies
 * on: each input is either accepted or rejected with a TraceError
 * whose byte offset points inside the mutated region — never a
 * crash, a hang, or an error pointing somewhere unrelated.
 *
 * The run is fully deterministic: all randomness comes from one
 * seeded critmem::Rng and the corpus is visited in sorted order, so
 * a failing (seed, iteration) pair reproduces exactly.
 *
 *   critmem-tracefuzz --corpus tests/trace/fixtures \
 *                     --iterations 10000 --seed 1
 *   critmem-tracefuzz --write-corpus tests/trace/fixtures
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#ifdef CRITMEM_HAVE_ZLIB
#include <zlib.h>
#endif

#include "sim/atomic_file.hh"
#include "sim/random.hh"
#include "trace/ingest/ingest.hh"
#include "trace/trace_file.hh"

using namespace critmem;

namespace
{

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: critmem-tracefuzz [options]\n"
        "  --corpus DIR       seed traces to mutate (default\n"
        "                     tests/trace/fixtures)\n"
        "  --iterations N     mutants to try (default 10000)\n"
        "  --seed N           fuzz seed (default 1)\n"
        "  --scratch FILE     scratch path for mutants (default\n"
        "                     tracefuzz.scratch)\n"
        "  --write-corpus DIR deterministically regenerate the seed\n"
        "                     corpus into DIR and exit\n"
        "  --quiet            only print the final summary\n");
    std::exit(1);
}

/** How a corpus entry is decoded and how its offsets are judged. */
enum class Kind
{
    Ingest, ///< text/binary ingest formats, raw transport
    Gzip,   ///< ingest behind gzip: error offsets are decompressed
    Ctmt,   ///< legacy CTMT replay trace (TraceReader)
};

struct CorpusEntry
{
    std::string name;
    Kind kind = Kind::Ingest;
    std::vector<unsigned char> bytes;
};

Kind
classify(const std::vector<unsigned char> &bytes)
{
    if (bytes.size() >= 2 && bytes[0] == 0x1f && bytes[1] == 0x8b)
        return Kind::Gzip;
    if (bytes.size() >= 4 && bytes[0] == 0x54 && bytes[1] == 0x4d &&
        bytes[2] == 0x54 && bytes[3] == 0x43)
        return Kind::Ctmt;
    return Kind::Ingest;
}

std::vector<CorpusEntry>
loadCorpus(const std::string &dir)
{
    namespace fs = std::filesystem;
    std::vector<fs::path> files;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (entry.is_regular_file())
            files.push_back(entry.path());
    }
    // Directory iteration order is filesystem-dependent; sort for a
    // deterministic corpus <-> iteration mapping.
    std::sort(files.begin(), files.end());

    std::vector<CorpusEntry> corpus;
    for (const fs::path &file : files) {
        std::FILE *f = std::fopen(file.string().c_str(), "rb");
        if (!f) {
            std::fprintf(stderr, "cannot open corpus file %s\n",
                         file.string().c_str());
            std::exit(1);
        }
        CorpusEntry entry;
        entry.name = file.filename().string();
        unsigned char buf[4096];
        std::size_t got = 0;
        while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
            entry.bytes.insert(entry.bytes.end(), buf, buf + got);
        std::fclose(f);
        entry.kind = classify(entry.bytes);
        corpus.push_back(std::move(entry));
    }
    return corpus;
}

// --------------------------------------------------------------
// Corpus generation (--write-corpus): small valid traces covering
// every format the decoder speaks. Deterministic for a given seed so
// the checked-in fixtures are reproducible.
// --------------------------------------------------------------

std::string
makeTextTrace(Rng &rng)
{
    static const char kLetters[] = {'A', 'M', 'F', 'G',
                                    'L', 'S', 'B'};
    std::string out = "ctrace text 1 4\n";
    out += "# 4-core mixed workload (seeded fuzz corpus)\n";
    char line[160];
    for (int i = 0; i < 200; ++i) {
        const unsigned core = static_cast<unsigned>(i) % 4;
        // Weight toward memory ops so the trace exercises the DRAM
        // path when replayed.
        const std::uint64_t pick = rng.below(10);
        const char cls = pick < 4 ? 'L'
            : pick < 6           ? 'S'
            : kLetters[rng.below(4)]; // A M F G
        const std::uint64_t pc =
            0x400000ull + core * 0x100000ull +
            static_cast<std::uint64_t>(i) * 4;
        // MB-spread, line-aligned addresses per core.
        const std::uint64_t addr = (1ull << 30) +
            core * (1ull << 24) + (rng.below(1ull << 22) & ~63ull);
        if (i % 11 == 0)
            out += "# interleaved comment\n";
        switch (i % 4) {
          case 0: // minimal four-field form, hex
            std::snprintf(line, sizeof(line),
                          "%u %c 0x%llx 0x%llx\n", core, cls,
                          static_cast<unsigned long long>(pc),
                          static_cast<unsigned long long>(addr));
            break;
          case 1: // with latency, decimal addresses
            std::snprintf(line, sizeof(line), "%u %c %llu %llu %u\n",
                          core, cls,
                          static_cast<unsigned long long>(pc),
                          static_cast<unsigned long long>(addr),
                          static_cast<unsigned>(1 + rng.below(8)));
            break;
          case 2: // with dependence distances
            std::snprintf(line, sizeof(line),
                          "%u %c 0x%llx 0x%llx %u %u %u\n", core, cls,
                          static_cast<unsigned long long>(pc),
                          static_cast<unsigned long long>(addr),
                          static_cast<unsigned>(1 + rng.below(4)),
                          static_cast<unsigned>(rng.below(8)),
                          static_cast<unsigned>(rng.below(8)));
            break;
          default: // full form; branches sometimes mispredict
            std::snprintf(line, sizeof(line),
                          "%u B 0x%llx 0 1 %u 0 %u\n", core,
                          static_cast<unsigned long long>(pc),
                          static_cast<unsigned>(rng.below(4)),
                          static_cast<unsigned>(rng.below(2)));
            break;
        }
        out += line;
    }
    return out;
}

void
putU16(std::string &out, std::uint16_t v)
{
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>(v >> 8));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::string
makeBinaryTrace(Rng &rng)
{
    std::string out = "CTIB";
    out.push_back(1); // version
    out.push_back(2); // cores
    out.push_back(0); // reserved
    out.push_back(0);
    for (int i = 0; i < 120; ++i) {
        const unsigned core = static_cast<unsigned>(i) % 2;
        const std::uint64_t pick = rng.below(10);
        const std::uint8_t cls = pick < 4 ? 4 // Load
            : pick < 6                    ? 5 // Store
            : static_cast<std::uint8_t>(rng.below(4));
        // ~10% extended records exercise forward compatibility.
        const std::uint16_t len =
            rng.below(10) == 0 ? 28 : 24;
        putU16(out, len);
        out.push_back(static_cast<char>(core));
        out.push_back(static_cast<char>(cls));
        out.push_back(
            static_cast<char>(1 + rng.below(8)));       // latency
        out.push_back(cls == 6 && rng.below(4) == 0 ? 1 // mispredict
                                                    : 0);
        putU64(out, 0x400000ull + core * 0x100000ull +
                   static_cast<std::uint64_t>(i) * 4); // pc
        putU64(out, (1ull << 28) + core * (1ull << 24) +
                   (rng.below(1ull << 21) & ~63ull)); // addr
        putU16(out, static_cast<std::uint16_t>(rng.below(8)));
        putU16(out, static_cast<std::uint16_t>(rng.below(8)));
        for (std::uint16_t extra = 24; extra < len; ++extra)
            out.push_back(static_cast<char>(rng.below(256)));
    }
    return out;
}

#ifdef CRITMEM_HAVE_ZLIB
std::string
gzipCompress(const std::string &raw)
{
    z_stream strm{};
    // 16+MAX_WBITS selects the gzip wrapper; zlib writes a zeroed
    // mtime so the output is byte-identical across runs.
    if (deflateInit2(&strm, Z_BEST_COMPRESSION, Z_DEFLATED,
                     16 + MAX_WBITS, 8,
                     Z_DEFAULT_STRATEGY) != Z_OK) {
        std::fprintf(stderr, "deflateInit2 failed\n");
        std::exit(1);
    }
    std::string out;
    out.resize(deflateBound(&strm, raw.size()));
    strm.next_in = reinterpret_cast<Bytef *>(
        const_cast<char *>(raw.data()));
    strm.avail_in = static_cast<uInt>(raw.size());
    strm.next_out = reinterpret_cast<Bytef *>(out.data());
    strm.avail_out = static_cast<uInt>(out.size());
    if (deflate(&strm, Z_FINISH) != Z_STREAM_END) {
        std::fprintf(stderr, "deflate failed\n");
        std::exit(1);
    }
    out.resize(out.size() - strm.avail_out);
    deflateEnd(&strm);
    return out;
}
#endif

void
writeCtmtTrace(const std::string &path, Rng &rng)
{
    TraceWriter writer(path);
    for (int i = 0; i < 48; ++i) {
        MicroOp op;
        const std::uint64_t pick = rng.below(10);
        op.cls = pick < 4 ? OpClass::Load
            : pick < 6   ? OpClass::Store
            : pick < 9   ? OpClass::IntAlu
                         : OpClass::Branch;
        op.pc = 0x400000ull + static_cast<std::uint64_t>(i) * 4;
        op.addr = (1ull << 26) + (rng.below(1ull << 18) & ~63ull);
        op.latency = static_cast<std::uint8_t>(1 + rng.below(4));
        op.dep1 = static_cast<std::uint16_t>(rng.below(8));
        op.mispredict =
            op.cls == OpClass::Branch && rng.below(4) == 0;
        writer.append(op);
    }
    writer.close();
}

int
writeCorpus(const std::string &dir, std::uint64_t seed)
{
    std::filesystem::create_directories(dir);
    Rng rng(seed);
    AtomicFile::writeAll(dir + "/mix4.ctext", makeTextTrace(rng));
    const std::string bin = makeBinaryTrace(rng);
    AtomicFile::writeAll(dir + "/pair2.cbin", bin);
#ifdef CRITMEM_HAVE_ZLIB
    AtomicFile::writeAll(dir + "/pair2.cbin.gz", gzipCompress(bin));
#else
    std::fprintf(stderr,
                 "note: zlib unavailable, skipping pair2.cbin.gz\n");
#endif
    writeCtmtTrace(dir + "/tiny.bin", rng);
    std::printf("corpus written to %s\n", dir.c_str());
    return 0;
}

// --------------------------------------------------------------
// Mutation engine
// --------------------------------------------------------------

/**
 * Apply one structured mutation to @p buf; @return the smallest byte
 * offset the mutation could have disturbed (for the offset-window
 * check), or SIZE_MAX when the mutation was a no-op on this buffer.
 */
std::uint64_t
mutateOnce(std::vector<unsigned char> &buf, Rng &rng,
           std::uint64_t headerSpan)
{
    const std::uint64_t which = rng.below(7);
    // Extension is the only mutation that works on an empty buffer.
    if (buf.empty() && which != 4)
        return ~std::uint64_t{0};
    switch (which) {
      case 0: { // bit flip
        const std::size_t pos = rng.below(buf.size());
        buf[pos] ^= static_cast<unsigned char>(1u << rng.below(8));
        return pos;
      }
      case 1: { // byte set
        const std::size_t pos = rng.below(buf.size());
        buf[pos] = static_cast<unsigned char>(rng.below(256));
        return pos;
      }
      case 2: { // zero-fill a short run
        const std::size_t pos = rng.below(buf.size());
        const std::size_t len =
            std::min<std::size_t>(1 + rng.below(64),
                                  buf.size() - pos);
        std::fill_n(buf.begin() + static_cast<std::ptrdiff_t>(pos),
                    len, 0);
        return pos;
      }
      case 3: { // truncate
        const std::size_t pos = rng.below(buf.size());
        buf.resize(pos);
        return pos;
      }
      case 4: { // extend with garbage
        const std::size_t old = buf.size();
        const std::size_t len = 1 + rng.below(128);
        for (std::size_t i = 0; i < len; ++i)
            buf.push_back(
                static_cast<unsigned char>(rng.below(256)));
        return old;
      }
      case 5: { // field splice: copy a chunk elsewhere in the file
        const std::size_t src = rng.below(buf.size());
        const std::size_t dst = rng.below(buf.size());
        const std::size_t len = std::min<std::size_t>(
            1 + rng.below(64),
            std::min(buf.size() - src, buf.size() - dst));
        std::memmove(buf.data() + dst, buf.data() + src, len);
        return dst;
      }
      default: { // header lie
        const std::size_t span = std::min<std::size_t>(
            buf.size(), static_cast<std::size_t>(headerSpan));
        const std::size_t pos = rng.below(span);
        buf[pos] = static_cast<unsigned char>(rng.below(256));
        return pos;
      }
    }
}

struct FuzzStats
{
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t failures = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    std::string corpusDir = "tests/trace/fixtures";
    std::string scratch = "tracefuzz.scratch";
    std::string writeDir;
    std::uint64_t iterations = 10000;
    std::uint64_t seed = 1;
    bool quiet = false;

    auto nextArg = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--corpus") {
            corpusDir = nextArg(i);
        } else if (arg == "--iterations") {
            iterations = std::strtoull(nextArg(i), nullptr, 10);
        } else if (arg == "--seed") {
            seed = std::strtoull(nextArg(i), nullptr, 10);
        } else if (arg == "--scratch") {
            scratch = nextArg(i);
        } else if (arg == "--write-corpus") {
            writeDir = nextArg(i);
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            usage();
        }
    }
    if (!writeDir.empty())
        return writeCorpus(writeDir, seed);

    const std::vector<CorpusEntry> corpus = loadCorpus(corpusDir);
    if (corpus.empty()) {
        std::fprintf(stderr, "no corpus files under %s\n",
                     corpusDir.c_str());
        return 1;
    }
    // Every corpus entry must decode cleanly before mutation: a
    // rejected seed would make "rejection near the mutation" vacuous.
    for (const CorpusEntry &entry : corpus) {
        const std::string path = corpusDir + "/" + entry.name;
        try {
            if (entry.kind == Kind::Ctmt) {
                TraceReader reader(path);
            } else {
                ingest::scanTrace(path, ingest::IngestOptions{});
            }
        } catch (const std::exception &err) {
            std::fprintf(stderr, "seed corpus %s does not decode: %s\n",
                         entry.name.c_str(), err.what());
            return 1;
        }
    }

    Rng rng(seed);
    FuzzStats stats;
    std::vector<unsigned char> buf;
    for (std::uint64_t iter = 0; iter < iterations; ++iter) {
        const CorpusEntry &entry = corpus[rng.below(corpus.size())];
        buf = entry.bytes;

        // The fixed-layout header is where "lies" (plausible but
        // wrong counts/magics) live; everything after it is records.
        const std::uint64_t headerSpan = entry.kind == Kind::Ctmt
            ? 16
            : 64; // binary header is 8 bytes, the text header line <64
        const std::uint64_t mutations = 1 + rng.below(3);
        std::uint64_t minStart = ~std::uint64_t{0};
        for (std::uint64_t m = 0; m < mutations; ++m)
            minStart =
                std::min(minStart, mutateOnce(buf, rng, headerSpan));

        {
            // lint:allow(durable-write): scratch mutant, rewritten
            // every iteration; a torn scratch is itself a fuzz input
            std::FILE *f = std::fopen(scratch.c_str(), "wb");
            if (!f || (buf.size() &&
                       std::fwrite(buf.data(), 1, buf.size(), f) !=
                           buf.size())) {
                std::fprintf(stderr, "cannot write scratch file %s\n",
                             scratch.c_str());
                return 1;
            }
            std::fclose(f);
        }

        // Rotate the recovery policy so every policy's error paths
        // see every mutation class.
        ingest::IngestOptions opts;
        opts.policy = iter % 3 == 0 ? ingest::RecoveryPolicy::Fail
            : iter % 3 == 1 ? ingest::RecoveryPolicy::SkipRecord
                            : ingest::RecoveryPolicy::Truncate;
        opts.skipBudget = 8;

        bool ok = true;
        std::string problem;
        try {
            if (entry.kind == Kind::Ctmt) {
                TraceReader reader(scratch);
            } else {
                ingest::scanTrace(scratch, opts);
            }
            ++stats.accepted;
        } catch (const TraceError &err) {
            ++stats.rejected;
            const std::uint64_t off = err.byteOffset();
            // The error must point inside the file, and either at
            // the header (always fair game for framing errors) or
            // no earlier than one max-sized record/line before the
            // first mutated byte. Gzip offsets are in the
            // decompressed domain and cannot be window-checked
            // against compressed-file positions.
            if (entry.kind != Kind::Gzip) {
                const std::uint64_t slack = 4096 + 8;
                const std::uint64_t windowLo =
                    minStart == ~std::uint64_t{0} || minStart < slack
                    ? 0
                    : minStart - slack;
                if (off > buf.size()) {
                    ok = false;
                    problem = "offset " + std::to_string(off) +
                        " past end of " +
                        std::to_string(buf.size()) + "-byte mutant";
                } else if (off > headerSpan && off < windowLo) {
                    ok = false;
                    problem = "offset " + std::to_string(off) +
                        " points before the mutated region (first "
                        "mutation at " + std::to_string(minStart) +
                        ")";
                }
                if (!ok)
                    problem += "; error: " + std::string(err.what());
            }
        } catch (const std::exception &err) {
            // Anything but TraceError is a contract violation.
            ok = false;
            problem = std::string("non-TraceError exception: ") +
                err.what();
        }
        if (!ok) {
            ++stats.failures;
            std::fprintf(stderr,
                         "FAIL seed=%llu iter=%llu corpus=%s "
                         "policy=%s: %s\n",
                         static_cast<unsigned long long>(seed),
                         static_cast<unsigned long long>(iter),
                         entry.name.c_str(),
                         ingest::toString(opts.policy),
                         problem.c_str());
        }
        if (!quiet && iter != 0 && iter % 2000 == 0) {
            std::fprintf(stderr,
                         "... %llu/%llu mutants (%llu accepted, "
                         "%llu rejected)\n",
                         static_cast<unsigned long long>(iter),
                         static_cast<unsigned long long>(iterations),
                         static_cast<unsigned long long>(
                             stats.accepted),
                         static_cast<unsigned long long>(
                             stats.rejected));
        }
    }
    std::remove(scratch.c_str());

    std::printf("tracefuzz: %llu mutants over %zu corpus files: "
                "%llu accepted, %llu rejected, %llu contract "
                "failures\n",
                static_cast<unsigned long long>(iterations),
                corpus.size(),
                static_cast<unsigned long long>(stats.accepted),
                static_cast<unsigned long long>(stats.rejected),
                static_cast<unsigned long long>(stats.failures));
    return stats.failures == 0 ? 0 : 1;
}

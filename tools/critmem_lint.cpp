/**
 * @file
 * critmem-lint: the project's static-analysis pass (DESIGN.md
 * sections 8 and 13). Scans src/, tools/, bench/ and examples/ with
 * the source rules, builds the cross-TU symbol index and runs the
 * semantic rules (transitive-determinism, clock-domain,
 * aggregation-thread-only) over the whole tree, flags stale
 * lint:allow suppressions, validates DDR3 timing presets and the
 * .sweep campaigns with the data rules, and reports everything not
 * covered by the checked-in baseline.
 *
 * Wired as the `lint` build target and the Lint.Repo ctest; run by
 * scripts/run_all.sh before the sanitizer passes. CRITMEM_LINT_BUDGET
 * (milliseconds) warns when the pass overruns its wall-clock budget;
 * CRITMEM_LINT_BUDGET_STRICT=1 turns the warning into a failure.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <string>

#include "analysis/analyzer.hh"
#include "sim/atomic_file.hh"

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --root DIR        repository root to scan (default: .)\n"
        "  --baseline FILE   baseline of known findings\n"
        "                    (default: ROOT/lint-baseline.txt when "
        "present)\n"
        "  --write-baseline  rewrite the baseline from the current\n"
        "                    findings and exit\n"
        "  --rule ID         run only rule ID (repeatable)\n"
        "  --json FILE       also write the report as JSON "
        "(atomic)\n"
        "  --list-rules      print every registered rule and exit\n"
        "  --quiet           suppress the summary line\n"
        "env: CRITMEM_LINT_BUDGET (ms) warns on overrun;\n"
        "     CRITMEM_LINT_BUDGET_STRICT=1 makes the overrun fatal\n"
        "exit status: 0 clean, 1 error findings, 2 bad invocation\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace critmem::analysis;

    std::string root = ".";
    std::string baselinePath;
    std::string jsonPath;
    bool writeBaseline = false;
    bool listRules = false;
    bool quiet = false;
    AnalyzerOptions opts;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n",
                             argv[0], arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--root") {
            root = value();
        } else if (arg == "--baseline") {
            baselinePath = value();
        } else if (arg == "--write-baseline") {
            writeBaseline = true;
        } else if (arg == "--rule") {
            const std::string id = value();
            if (!haveRule(id)) {
                std::fprintf(stderr, "%s: unknown rule '%s'\n",
                             argv[0], id.c_str());
                return 2;
            }
            opts.ruleFilter.insert(id);
        } else if (arg == "--json") {
            jsonPath = value();
        } else if (arg == "--list-rules") {
            listRules = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            return usage(argv[0]);
        }
    }

    if (listRules) {
        // Column widths follow the registered ids so a long rule id
        // never breaks the alignment.
        std::size_t idWidth = 0;
        for (const RuleMeta &meta : allRuleMetas())
            idWidth = std::max(idWidth, std::strlen(meta.id));
        for (const RuleMeta &meta : allRuleMetas()) {
            std::printf("%-*s %-7s %s\n",
                        static_cast<int>(idWidth), meta.id,
                        toString(meta.severity), meta.desc);
        }
        return 0;
    }

    try {
        opts.root = root;

        Baseline baseline;
        std::string effectiveBaseline = baselinePath;
        if (effectiveBaseline.empty()) {
            const std::string candidate =
                root + "/lint-baseline.txt";
            if (std::ifstream(candidate).good())
                effectiveBaseline = candidate;
        }
        if (!effectiveBaseline.empty() && !writeBaseline)
            baseline = loadBaseline(effectiveBaseline);

        // The budget check times the lint pass itself; the duration
        // is diagnostic only and never enters the report, so reading
        // the host clock here cannot perturb any simulated result.
        using LintClock = std::chrono::steady_clock; // lint:allow(wall-clock): timing the tool, not the simulation
        const LintClock::time_point t0 = LintClock::now();
        const Report report = runAnalysis(opts, baseline);
        const long elapsedMs =
            static_cast<long>(std::chrono::duration_cast<
                                  std::chrono::milliseconds>(
                                  LintClock::now() - t0)
                                  .count());

        bool budgetBlown = false;
        if (const char *budget =
                std::getenv("CRITMEM_LINT_BUDGET")) {
            const long limitMs = std::atol(budget);
            if (limitMs > 0 && elapsedMs > limitMs) {
                const char *strict =
                    std::getenv("CRITMEM_LINT_BUDGET_STRICT");
                budgetBlown =
                    strict != nullptr && std::strcmp(strict, "1") == 0;
                std::fprintf(
                    stderr,
                    "critmem-lint: %s: pass took %ld ms, budget "
                    "CRITMEM_LINT_BUDGET=%ld ms\n",
                    budgetBlown ? "error" : "warning", elapsedMs,
                    limitMs);
            }
        }

        if (!jsonPath.empty()) {
            // Atomic temp+fsync+rename write, and a deterministic
            // byte stream: two runs over the same tree produce
            // byte-identical JSON (asserted by check_determinism.sh).
            try {
                critmem::AtomicFile out(jsonPath);
                out.stream() << formatJson(report);
                out.commit();
            } catch (const std::exception &err) {
                std::fprintf(stderr, "%s: cannot write %s: %s\n",
                             argv[0], jsonPath.c_str(), err.what());
                return 2;
            }
        }

        if (writeBaseline) {
            if (effectiveBaseline.empty())
                effectiveBaseline = root + "/lint-baseline.txt";
            // Atomic temp+fsync+rename write: concurrent lint runs
            // (or a crash) never leave a half-written baseline.
            try {
                critmem::AtomicFile out(effectiveBaseline);
                out.stream() << formatBaseline(report.findings);
                out.commit();
            } catch (const std::exception &err) {
                std::fprintf(stderr, "%s: cannot write %s: %s\n",
                             argv[0], effectiveBaseline.c_str(),
                             err.what());
                return 2;
            }
            std::fprintf(stderr,
                         "wrote %zu baseline entr%s to %s\n",
                         report.findings.size(),
                         report.findings.size() == 1 ? "y" : "ies",
                         effectiveBaseline.c_str());
            return 0;
        }

        for (const Finding &finding : report.findings)
            std::cout << finding << '\n';
        if (!quiet) {
            std::fprintf(
                stderr,
                "critmem-lint: %zu file%s scanned, %zu finding%s"
                " (%zu baselined) in %ld ms\n",
                report.filesScanned,
                report.filesScanned == 1 ? "" : "s",
                report.findings.size(),
                report.findings.size() == 1 ? "" : "s",
                report.baselined.size(), elapsedMs);
        }
        if (budgetBlown)
            return 1;
        return report.clean() ? 0 : 1;
    } catch (const std::exception &err) {
        std::fprintf(stderr, "%s: %s\n", argv[0], err.what());
        return 2;
    }
}

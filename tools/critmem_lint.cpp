/**
 * @file
 * critmem-lint: the project's static-analysis pass (DESIGN.md
 * section 8). Scans src/, tools/, bench/ and examples/ with the
 * source rules, validates DDR3 timing presets and the .sweep
 * campaigns with the data rules, and reports everything not covered
 * by the checked-in baseline.
 *
 * Wired as the `lint` build target and the Lint.Repo ctest; run by
 * scripts/run_all.sh before the sanitizer passes.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <string>

#include "analysis/analyzer.hh"
#include "sim/atomic_file.hh"

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --root DIR        repository root to scan (default: .)\n"
        "  --baseline FILE   baseline of known findings\n"
        "                    (default: ROOT/lint-baseline.txt when "
        "present)\n"
        "  --write-baseline  rewrite the baseline from the current\n"
        "                    findings and exit\n"
        "  --rule ID         run only rule ID (repeatable)\n"
        "  --list-rules      print every registered rule and exit\n"
        "  --quiet           suppress the summary line\n"
        "exit status: 0 clean, 1 error findings, 2 bad invocation\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace critmem::analysis;

    std::string root = ".";
    std::string baselinePath;
    bool writeBaseline = false;
    bool listRules = false;
    bool quiet = false;
    AnalyzerOptions opts;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n",
                             argv[0], arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--root") {
            root = value();
        } else if (arg == "--baseline") {
            baselinePath = value();
        } else if (arg == "--write-baseline") {
            writeBaseline = true;
        } else if (arg == "--rule") {
            const std::string id = value();
            if (!haveRule(id)) {
                std::fprintf(stderr, "%s: unknown rule '%s'\n",
                             argv[0], id.c_str());
                return 2;
            }
            opts.ruleFilter.insert(id);
        } else if (arg == "--list-rules") {
            listRules = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            return usage(argv[0]);
        }
    }

    if (listRules) {
        for (const RuleMeta &meta : allRuleMetas()) {
            std::printf("%-16s %-7s %s\n", meta.id,
                        toString(meta.severity), meta.desc);
        }
        return 0;
    }

    try {
        opts.root = root;

        Baseline baseline;
        std::string effectiveBaseline = baselinePath;
        if (effectiveBaseline.empty()) {
            const std::string candidate =
                root + "/lint-baseline.txt";
            if (std::ifstream(candidate).good())
                effectiveBaseline = candidate;
        }
        if (!effectiveBaseline.empty() && !writeBaseline)
            baseline = loadBaseline(effectiveBaseline);

        const Report report = runAnalysis(opts, baseline);

        if (writeBaseline) {
            if (effectiveBaseline.empty())
                effectiveBaseline = root + "/lint-baseline.txt";
            // Atomic temp+fsync+rename write: concurrent lint runs
            // (or a crash) never leave a half-written baseline.
            try {
                critmem::AtomicFile out(effectiveBaseline);
                out.stream() << formatBaseline(report.findings);
                out.commit();
            } catch (const std::exception &err) {
                std::fprintf(stderr, "%s: cannot write %s: %s\n",
                             argv[0], effectiveBaseline.c_str(),
                             err.what());
                return 2;
            }
            std::fprintf(stderr,
                         "wrote %zu baseline entr%s to %s\n",
                         report.findings.size(),
                         report.findings.size() == 1 ? "y" : "ies",
                         effectiveBaseline.c_str());
            return 0;
        }

        for (const Finding &finding : report.findings)
            std::cout << finding << '\n';
        if (!quiet) {
            std::fprintf(
                stderr,
                "critmem-lint: %zu file%s scanned, %zu finding%s"
                " (%zu baselined)\n",
                report.filesScanned,
                report.filesScanned == 1 ? "" : "s",
                report.findings.size(),
                report.findings.size() == 1 ? "" : "s",
                report.baselined.size());
        }
        return report.clean() ? 0 : 1;
    } catch (const std::exception &err) {
        std::fprintf(stderr, "%s: %s\n", argv[0], err.what());
        return 2;
    }
}
